// Package bench generates the benchmark datasets ConvMeter's coefficients
// are fitted on, mirroring the paper's measurement campaign: sweeps over
// the ConvNet zoo, image sizes 32–224 px and batch sizes 1–2048 ("as long
// as the available memory on the target system allows"), collecting fewer
// than 5,000 data points per scenario. Measurements come from the
// hardware/training simulators (see DESIGN.md for the substitution).
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/obs"
	"convmeter/internal/trainsim"
)

// MaxPointsPerScenario caps dataset sizes at the paper's "<5,000 points".
const MaxPointsPerScenario = 5000

// DefaultImages is the paper's image-size sweep (32 to 224 pixels).
func DefaultImages() []int { return []int{32, 64, 96, 128, 160, 192, 224} }

// DefaultBatches is the paper's batch-size sweep (1 to 2048, powers of
// two).
func DefaultBatches() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
}

// PaperModels is the representative ConvNet cross-section evaluated
// per-model in the paper's Tables 1 and 3.
func PaperModels() []string {
	return []string{
		"alexnet", "vgg11", "vgg16",
		"resnet18", "resnet50", "resnext50_32x4d", "wide_resnet50_2",
		"squeezenet1_0", "mobilenet_v2", "mobilenet_v3_large",
		"efficientnet_b0", "regnet_x_400mf", "densenet121",
	}
}

// ScalingModels is the eight-ConvNet subset of the paper's node-scaling
// experiment (Figure 8).
func ScalingModels() []string {
	return []string{
		"alexnet", "resnet18", "resnet50", "vgg16",
		"mobilenet_v2", "efficientnet_b0", "squeezenet1_0", "regnet_x_400mf",
	}
}

// builtModel caches a graph and its batch-1 metrics.
type builtModel struct {
	g   *graph.Graph
	met metrics.Metrics
}

// buildAll constructs every (model, image) combination that the
// architecture supports, silently skipping structurally impossible ones
// (e.g. AlexNet at 32 px), exactly as a real benchmark campaign would.
func buildAll(names []string, images []int) (map[string]map[int]builtModel, error) {
	out := make(map[string]map[int]builtModel, len(names))
	for _, name := range names {
		perImage := map[int]builtModel{}
		for _, img := range images {
			g, err := models.Build(name, img)
			if err != nil {
				continue // architecture cannot process this image size
			}
			met, err := metrics.FromGraph(g)
			if err != nil {
				return nil, fmt.Errorf("bench: metrics for %s@%d: %w", name, img, err)
			}
			perImage[img] = builtModel{g: g, met: met}
		}
		if len(perImage) == 0 {
			return nil, fmt.Errorf("bench: model %s builds at none of the requested image sizes", name)
		}
		out[name] = perImage
	}
	return out, nil
}

// InferenceScenario configures an inference benchmark sweep.
type InferenceScenario struct {
	Device     hwsim.Device
	Models     []string
	Images     []int
	Batches    []int
	NoiseSigma float64
	Seed       int64
	// Obs, when non-nil, receives sweep telemetry: point/task counters,
	// task-latency histograms, and one span per (model, image) task.
	Obs *obs.Obs
}

// DefaultInferenceScenario returns the paper's inference campaign on the
// given device.
func DefaultInferenceScenario(dev hwsim.Device, seed int64) InferenceScenario {
	return InferenceScenario{
		Device:     dev,
		Models:     PaperModels(),
		Images:     DefaultImages(),
		Batches:    DefaultBatches(),
		NoiseSigma: 0.06,
		Seed:       seed,
	}
}

// inferencePoint measures one (model, image, batch) sweep point and
// appends the sample to out, or counts a skip when the model does not
// fit device memory. It is the per-point inner loop of CollectInference
// and a declared hot-path root: the fit check, the forward prediction
// and the sample construction allocate nothing — the caller preallocates
// out to the full batch-sweep length, so append never grows it.
func inferencePoint(sim *hwsim.Simulator, bm builtModel, model string, img, batch int,
	out []core.Sample, skippedC *obs.Counter) ([]core.Sample, bool) {
	if !sim.Fits(bm.g, batch, false) {
		skippedC.Inc()
		return out, false // paper rule: sweep only while memory allows
	}
	return append(out, core.Sample{
		Model: model, Met: bm.met, Image: img,
		BatchPerDevice: batch, Devices: 1, Nodes: 1,
		Fwd: metrics.Seconds(sim.Forward(bm.g, batch)),
	}), true
}

// CollectInference runs the sweep and returns one sample per feasible
// (model, image, batch) combination.
func CollectInference(sc InferenceScenario) ([]core.Sample, error) {
	if len(sc.Models) == 0 || len(sc.Images) == 0 || len(sc.Batches) == 0 {
		return nil, fmt.Errorf("bench: empty inference scenario")
	}
	built, err := buildAll(sc.Models, sc.Images)
	if err != nil {
		return nil, err
	}
	// One task per (model, image): each owns a simulator seeded from the
	// configuration identity, so the sweep parallelises across cores while
	// staying bit-reproducible.
	type task struct {
		model string
		img   int
	}
	var tasks []task
	for _, name := range sc.Models {
		for _, img := range sc.Images {
			if _, ok := built[name][img]; ok {
				tasks = append(tasks, task{name, img})
			}
		}
	}
	pointsC, skippedC := sweepCounters(sc.Obs, "inference")
	results := make([][]core.Sample, len(tasks))
	err = runParallelObs(len(tasks), sc.Obs, "inference", func(i int) error {
		t := tasks[i]
		sp := sc.Obs.Start("bench:" + t.model + "@" + strconv.Itoa(t.img))
		defer sp.End()
		bm := built[t.model][t.img]
		sim := hwsim.NewSimulator(sc.Device, sc.NoiseSigma,
			deriveSeed(sc.Seed, "inference", t.model, strconv.Itoa(t.img)))
		out := make([]core.Sample, 0, len(sc.Batches))
		for _, batch := range sc.Batches {
			out, _ = inferencePoint(sim, bm, t.model, t.img, batch, out, skippedC)
		}
		pointsC.Add(float64(len(out)))
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var samples []core.Sample
	for _, r := range results {
		samples = append(samples, r...)
	}
	return capPoints(samples), nil
}

// TrainingScenario configures a training benchmark sweep. Topologies list
// the (devices, nodes) combinations to measure.
type TrainingScenario struct {
	Device         hwsim.Device
	Fabric         netsim.Fabric
	Models         []string
	Images         []int
	Batches        []int
	Topologies     [][2]int // {devices, nodes}
	FusionBytes    float64
	NoiseSigma     float64
	CommNoiseSigma float64
	Seed           int64
	// Obs, when non-nil, receives sweep telemetry (see InferenceScenario).
	Obs *obs.Obs
}

// sweepCounters returns the per-scenario point and memory-skip counters
// shared by the three collectors. Nil counters (disabled telemetry) are
// no-ops at the call sites.
func sweepCounters(o *obs.Obs, scenario string) (points, skipped *obs.Counter) {
	if o == nil {
		return nil, nil
	}
	return o.Counter(obs.Label("convmeter_bench_points_total", "scenario", scenario),
			"benchmark samples collected, by scenario kind"),
		o.Counter(obs.Label("convmeter_bench_skipped_total", "scenario", scenario),
			"sweep combinations skipped because the model does not fit device memory")
}

// DefaultSingleGPUScenario is the paper's single-A100 training campaign.
func DefaultSingleGPUScenario(seed int64) TrainingScenario {
	return TrainingScenario{
		Device:         hwsim.A100(),
		Fabric:         netsim.Cluster(),
		Models:         PaperModels(),
		Images:         []int{64, 128, 192, 224},
		Batches:        []int{1, 4, 16, 64, 256, 1024},
		Topologies:     [][2]int{{1, 1}},
		NoiseSigma:     0.06,
		CommNoiseSigma: 0.06,
		Seed:           seed,
	}
}

// DefaultDistributedScenario is the paper's multi-node campaign: four
// A100s per node across 1–16 nodes.
func DefaultDistributedScenario(seed int64) TrainingScenario {
	return TrainingScenario{
		Device:  hwsim.A100(),
		Fabric:  netsim.Cluster(),
		Models:  PaperModels(),
		Images:  []int{64, 128, 224},
		Batches: []int{4, 16, 64, 256},
		Topologies: [][2]int{
			{8, 2}, {16, 4}, {32, 8}, {64, 16},
		},
		NoiseSigma:     0.06,
		CommNoiseSigma: 0.16,
		Seed:           seed,
	}
}

// CollectTraining runs the training sweep.
func CollectTraining(sc TrainingScenario) ([]core.Sample, error) {
	if len(sc.Models) == 0 || len(sc.Images) == 0 || len(sc.Batches) == 0 || len(sc.Topologies) == 0 {
		return nil, fmt.Errorf("bench: empty training scenario")
	}
	built, err := buildAll(sc.Models, sc.Images)
	if err != nil {
		return nil, err
	}
	// Validate the configuration once up front so workers cannot race on
	// a construction error.
	if _, err := trainsim.New(trainsim.Config{
		Device: sc.Device, Fabric: sc.Fabric, FusionBytes: sc.FusionBytes,
		NoiseSigma: sc.NoiseSigma, CommNoiseSigma: sc.CommNoiseSigma, Seed: sc.Seed,
	}); err != nil {
		return nil, err
	}
	type task struct {
		model string
		img   int
	}
	var tasks []task
	for _, name := range sc.Models {
		for _, img := range sc.Images {
			if _, ok := built[name][img]; ok {
				tasks = append(tasks, task{name, img})
			}
		}
	}
	pointsC, skippedC := sweepCounters(sc.Obs, "training")
	results := make([][]core.Sample, len(tasks))
	err = runParallelObs(len(tasks), sc.Obs, "training", func(i int) error {
		t := tasks[i]
		sp := sc.Obs.Start("bench:" + t.model + "@" + strconv.Itoa(t.img))
		defer sp.End()
		bm := built[t.model][t.img]
		sim, err := trainsim.New(trainsim.Config{
			Device: sc.Device, Fabric: sc.Fabric, FusionBytes: sc.FusionBytes,
			NoiseSigma: sc.NoiseSigma, CommNoiseSigma: sc.CommNoiseSigma,
			Seed: deriveSeed(sc.Seed, "training", t.model, strconv.Itoa(t.img)),
		})
		if err != nil {
			return err
		}
		var out []core.Sample
		for _, batch := range sc.Batches {
			if !sim.Fits(bm.g, batch) {
				skippedC.Inc()
				continue
			}
			for _, topo := range sc.Topologies {
				p, err := sim.TrainStep(bm.g, batch, topo[0], topo[1])
				if err != nil {
					return fmt.Errorf("bench: %s@%d b%d on %v: %w", t.model, t.img, batch, topo, err)
				}
				out = append(out, core.Sample{
					Model: t.model, Met: bm.met, Image: t.img,
					BatchPerDevice: batch, Devices: topo[0], Nodes: topo[1],
					Fwd:  metrics.Seconds(p.Fwd),
					Bwd:  metrics.Seconds(p.Bwd),
					Grad: metrics.Seconds(p.Grad),
				})
			}
		}
		pointsC.Add(float64(len(out)))
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var samples []core.Sample
	for _, r := range results {
		samples = append(samples, r...)
	}
	return capPoints(samples), nil
}

// BlockScenario configures the block-wise sweep of Table 2.
type BlockScenario struct {
	Device     hwsim.Device
	Blocks     []string
	Scales     []float64 // input-size multipliers on each block's natural size
	Batches    []int
	NoiseSigma float64
	Seed       int64
	// Obs, when non-nil, receives sweep telemetry (see InferenceScenario).
	Obs *obs.Obs
}

// DefaultBlockScenario sweeps all registered Table 2 blocks on an A100.
func DefaultBlockScenario(seed int64) BlockScenario {
	return BlockScenario{
		Device:     hwsim.A100(),
		Blocks:     models.BlockNames(),
		Scales:     []float64{0.5, 1, 1.5, 2},
		Batches:    []int{1, 4, 16, 64, 256, 1024},
		NoiseSigma: 0.06,
		Seed:       seed,
	}
}

// CollectBlocks measures the named blocks at varying spatial inputs and
// batch sizes. The Sample.Model field carries the block name.
func CollectBlocks(sc BlockScenario) ([]core.Sample, error) {
	if len(sc.Blocks) == 0 || len(sc.Scales) == 0 || len(sc.Batches) == 0 {
		return nil, fmt.Errorf("bench: empty block scenario")
	}
	for _, name := range sc.Blocks {
		if _, err := models.Block(name); err != nil {
			return nil, err
		}
	}
	pointsC, skippedC := sweepCounters(sc.Obs, "blocks")
	results := make([][]core.Sample, len(sc.Blocks))
	err := runParallelObs(len(sc.Blocks), sc.Obs, "blocks", func(i int) error {
		name := sc.Blocks[i]
		sp := sc.Obs.Start("bench:" + name)
		defer sp.End()
		info, err := models.Block(name)
		if err != nil {
			return err
		}
		sim := hwsim.NewSimulator(sc.Device, sc.NoiseSigma,
			deriveSeed(sc.Seed, "blocks", name))
		var out []core.Sample
		for _, scale := range sc.Scales {
			hw := int(float64(info.NaturalHW) * scale)
			if hw < 3 {
				continue
			}
			g, err := models.BuildBlock(name, hw)
			if err != nil {
				continue
			}
			met, err := metrics.FromGraph(g)
			if err != nil {
				return err
			}
			for _, batch := range sc.Batches {
				if !sim.Fits(g, batch, false) {
					skippedC.Inc()
					continue
				}
				out = append(out, core.Sample{
					Model: name, Met: met, Image: hw,
					BatchPerDevice: batch, Devices: 1, Nodes: 1,
					Fwd: metrics.Seconds(sim.Forward(g, batch)),
				})
			}
		}
		pointsC.Add(float64(len(out)))
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var samples []core.Sample
	for _, r := range results {
		samples = append(samples, r...)
	}
	return capPoints(samples), nil
}

// CollectNamed runs one of the named default campaigns — the scenario
// vocabulary of cmd/benchgen: inference-gpu, inference-cpu, train-single,
// train-multi, blocks.
func CollectNamed(scenario string, seed int64) ([]core.Sample, error) {
	switch scenario {
	case "inference-gpu":
		return CollectInference(DefaultInferenceScenario(hwsim.A100(), seed))
	case "inference-cpu":
		sc := DefaultInferenceScenario(hwsim.XeonCore(), seed)
		// A single CPU core is swept to batch 32 only; larger batches
		// would take hours per measurement on real hardware.
		sc.Batches = []int{1, 2, 4, 8, 16, 32}
		return CollectInference(sc)
	case "train-single":
		return CollectTraining(DefaultSingleGPUScenario(seed))
	case "train-multi":
		return CollectTraining(DefaultDistributedScenario(seed))
	case "blocks":
		return CollectBlocks(DefaultBlockScenario(seed))
	default:
		return nil, fmt.Errorf("bench: unknown scenario %q (inference-gpu, inference-cpu, train-single, train-multi, blocks)", scenario)
	}
}

// Subsample returns n samples drawn deterministically and *stratified by
// model*: every model keeps (approximately) its proportional share, so a
// reduced dataset still spans the zoo. Used by the modeling-effort
// ablation (§3.4) to study fit quality vs dataset size.
func Subsample(samples []core.Sample, n int, seed int64) []core.Sample {
	if n <= 0 || n >= len(samples) {
		return samples
	}
	byModel := map[string][]core.Sample{}
	var order []string
	for _, s := range samples {
		if _, ok := byModel[s.Model]; !ok {
			order = append(order, s.Model)
		}
		byModel[s.Model] = append(byModel[s.Model], s)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []core.Sample
	remaining := n
	for i, model := range order {
		group := byModel[model]
		// Proportional share over the remaining groups, at least one.
		groupsLeft := len(order) - i
		take := remaining / groupsLeft
		if take < 1 {
			take = 1
		}
		if take > len(group) {
			take = len(group)
		}
		if take > remaining {
			take = remaining
		}
		perm := rng.Perm(len(group))[:take]
		sort.Ints(perm) // keep sweep order within the group
		for _, j := range perm {
			out = append(out, group[j])
		}
		remaining -= take
		if remaining == 0 {
			break
		}
	}
	return out
}

// capPoints enforces the paper's <5,000-point rule by deterministic
// decimation (every k-th point) rather than truncation, preserving
// coverage of the sweep.
func capPoints(samples []core.Sample) []core.Sample {
	if len(samples) <= MaxPointsPerScenario {
		return samples
	}
	stride := (len(samples) + MaxPointsPerScenario - 1) / MaxPointsPerScenario
	var out []core.Sample
	for i := 0; i < len(samples); i += stride {
		out = append(out, samples[i])
	}
	return out
}
