package bench

import (
	"testing"

	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/testrace"
)

// TestInferencePointZeroAllocs pins the allocation contract of the
// sweep's per-point inner loop (the declared bench.inferencePoint
// root): with the output slice preallocated to the batch-sweep length,
// measuring one point — the memory-fit check, the simulated forward
// pass over the whole graph, and the sample append — does not touch
// the heap. This is the cross-package half the hotpath analyzer cannot
// see (hwsim and the graph shape arena), so it is asserted dynamically.
func TestInferencePointZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	g, err := models.Build("resnet18", 64)
	if err != nil {
		t.Fatal(err)
	}
	met, err := metrics.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	bm := builtModel{g: g, met: met}
	sim := hwsim.NewSimulator(hwsim.A100(), 0.06, 1)
	out := make([]core.Sample, 0, 4)
	point := func() {
		out = out[:0]
		var kept bool
		if out, kept = inferencePoint(sim, bm, "resnet18", 64, 8, out, nil); !kept {
			t.Fatal("resnet18@64 b8 must fit an A100")
		}
	}
	point() // warm the graph's lazily built shape arena
	if n := testing.AllocsPerRun(100, point); n != 0 {
		t.Errorf("inferencePoint allocates %.2f/op, want 0", n)
	}
}
