package bench

import (
	"convmeter/internal/core"
	"convmeter/internal/driftwatch"
)

// FeedDrift streams a benchmark sweep through a drift stream in sample
// order: for each sample it observes (predict(s), actual(s)), so a
// fitted model's in-sample accuracy appears on the live /drift endpoint
// with the same rolling-window metrics the offline reports use. With a
// nil stream (monitoring disabled) it is a no-op.
func FeedDrift(st *driftwatch.Stream, samples []core.Sample, predict, actual func(core.Sample) float64) {
	if st == nil {
		return
	}
	for _, s := range samples {
		st.Observe(predict(s), actual(s))
	}
}
