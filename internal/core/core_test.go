package core

import (
	"math"
	"math/rand"
	"testing"

	"convmeter/internal/metrics"
)

// synthMetrics fabricates a family of distinct "models".
func synthMetrics(i int) metrics.Metrics {
	f := float64(i + 1)
	// Deliberately non-collinear growth patterns across the family so the
	// design matrix is well conditioned, as with real ConvNet metrics.
	return metrics.Metrics{
		Model:   string(rune('a' + i)),
		FLOPs:   metrics.FLOPs(1e9 * f * f),
		Inputs:  metrics.Count(2e6 * f),
		Outputs: metrics.Count(3e6 * math.Sqrt(f)),
		Weights: metrics.Count(5e6 * f * math.Sqrt(f)),
		Layers:  metrics.Count(20 + 5*float64(i)),
	}
}

// linearInferenceSamples generates samples obeying the paper's Eq. 3
// exactly with known coefficients.
func linearInferenceSamples(nModels int, batches []int) []Sample {
	var out []Sample
	for i := 0; i < nModels; i++ {
		met := synthMetrics(i)
		for _, b := range batches {
			fwd := 2e-12*float64(met.FLOPs)*float64(b) + 3e-10*float64(met.Inputs)*float64(b) + 4e-10*float64(met.Outputs)*float64(b) + 0.001
			out = append(out, Sample{
				Model: met.Model, Met: met, Image: 128,
				BatchPerDevice: b, Devices: 1, Nodes: 1, Fwd: metrics.Seconds(fwd),
			})
		}
	}
	return out
}

func TestFitInferenceRecoversCoefficients(t *testing.T) {
	samples := linearInferenceSamples(5, []int{1, 2, 4, 8, 16, 32})
	m, err := FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2e-12, 3e-10, 4e-10, 0.001}
	got := m.Coefficients()
	for i := range want {
		if rel := math.Abs(got[i]-want[i]) / want[i]; rel > 1e-6 {
			t.Fatalf("coef %d = %g, want %g", i, got[i], want[i])
		}
	}
	// Prediction at an unseen batch size must extrapolate exactly.
	met := synthMetrics(0)
	pred := float64(m.Predict(met, 1024))
	wantT := 2e-12*float64(met.FLOPs)*1024 + 3e-10*float64(met.Inputs)*1024 + 4e-10*float64(met.Outputs)*1024 + 0.001
	if math.Abs(pred-wantT)/wantT > 1e-9 {
		t.Fatalf("extrapolated prediction %g, want %g", pred, wantT)
	}
}

func TestFitInferenceValidation(t *testing.T) {
	if _, err := FitInference(nil); err == nil {
		t.Fatal("expected error on empty samples")
	}
	bad := []Sample{{Model: "", BatchPerDevice: 1, Devices: 1, Nodes: 1}}
	if _, err := FitInference(bad); err == nil {
		t.Fatal("expected error on unnamed model")
	}
	bad = []Sample{{Model: "x", BatchPerDevice: 0, Devices: 1, Nodes: 1}}
	if _, err := FitInference(bad); err == nil {
		t.Fatal("expected error on zero batch")
	}
	bad = []Sample{{Model: "x", BatchPerDevice: 1, Devices: 1, Nodes: 2}}
	if _, err := FitInference(bad); err == nil {
		t.Fatal("expected error on nodes > devices")
	}
	bad = []Sample{{Model: "x", BatchPerDevice: 1, Devices: 1, Nodes: 1, Fwd: -1}}
	if _, err := FitInference(bad); err == nil {
		t.Fatal("expected error on negative time")
	}
}

func TestEvaluateInferenceLOMOPerfectData(t *testing.T) {
	samples := linearInferenceSamples(6, []int{1, 4, 16, 64})
	ev, err := EvaluateInferenceLOMO(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.PerModel) != 6 {
		t.Fatalf("PerModel has %d entries", len(ev.PerModel))
	}
	if ev.Overall.R2 < 0.999999 {
		t.Fatalf("overall R2 = %g on noiseless linear data", ev.Overall.R2)
	}
	for name, rep := range ev.PerModel {
		if rep.MAPE > 1e-6 {
			t.Fatalf("%s: MAPE = %g on noiseless data", name, rep.MAPE)
		}
	}
	if len(ev.Pairs) != len(samples) {
		t.Fatalf("pairs = %d, want %d", len(ev.Pairs), len(samples))
	}
	if got := ev.Models(); len(got) != 6 || got[0] != "a" {
		t.Fatalf("Models() = %v", got)
	}
}

func TestLOMORejectsSingleModel(t *testing.T) {
	samples := linearInferenceSamples(1, []int{1, 2, 4, 8, 16})
	if _, err := EvaluateInferenceLOMO(samples); err == nil {
		t.Fatal("expected error with a single model")
	}
}

// trainSamples fabricates training measurements with a known structure:
// fwd/bwd linear in F,I,O·b and grad linear in L (single) or L,W,N.
func trainSamples(nModels int, deviceCounts []int, noise float64, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for i := 0; i < nModels; i++ {
		met := synthMetrics(i)
		for _, dev := range deviceCounts {
			for _, b := range []int{4, 16, 64} {
				bf := float64(b)
				fwd := 2e-12*float64(met.FLOPs)*bf + 2e-10*float64(met.Inputs)*bf + 3e-10*float64(met.Outputs)*bf + 0.001
				bwd := 2 * fwd
				grad := 1e-4 * float64(met.Layers)
				if dev > 1 {
					grad += 2e-9*float64(met.Weights) + 3e-4*float64(dev)
				}
				n := func() float64 { return 1 + noise*rng.NormFloat64() }
				nodes := (dev + 3) / 4
				if dev == 1 {
					nodes = 1
				}
				out = append(out, Sample{
					Model: met.Model, Met: met, Image: 128,
					BatchPerDevice: b, Devices: dev, Nodes: nodes,
					Fwd: metrics.Seconds(fwd * n()), Bwd: metrics.Seconds(bwd * n()), Grad: metrics.Seconds(grad * n()),
				})
			}
		}
	}
	return out
}

func TestFitTrainingSingleDeviceLayout(t *testing.T) {
	samples := trainSamples(5, []int{1}, 0, 1)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Multi() {
		t.Fatal("single-device data must select the single-device layout")
	}
	for _, s := range samples[:10] {
		ph := m.PredictPhases(s.Met, float64(s.BatchPerDevice), 1, 1)
		if rel := math.Abs(float64(ph.Iter-s.Iter())) / float64(s.Iter()); rel > 1e-6 {
			t.Fatalf("noiseless single-device iter prediction off by %g", rel)
		}
		if rel := math.Abs(float64(ph.Grad-s.Grad)) / float64(s.Grad); rel > 1e-6 {
			t.Fatalf("grad prediction off by %g", rel)
		}
	}
}

func TestFitTrainingMultiDeviceLayout(t *testing.T) {
	// The paper fits the distributed scenario separately from the
	// single-GPU one (its T_grad has two distinct functional forms), so a
	// distributed dataset contains only N > 1 samples.
	samples := trainSamples(5, []int{4, 8, 16}, 0, 1)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Multi() {
		t.Fatal("multi-device data must select the multi layout")
	}
	for _, s := range samples {
		ph := m.PredictPhases(s.Met, float64(s.BatchPerDevice), s.Devices, s.Nodes)
		if rel := math.Abs(float64(ph.Iter-s.Iter())) / float64(s.Iter()); rel > 1e-6 {
			t.Fatalf("noiseless multi-device iter prediction off by %g", rel)
		}
		if rel := math.Abs(float64(ph.Grad-s.Grad)) / float64(s.Grad); rel > 1e-6 {
			t.Fatalf("grad prediction off by %g", rel)
		}
	}
}

func TestFitTrainingMixedScenarioStillFits(t *testing.T) {
	// Mixing N=1 and N>1 data crosses the paper's two-branch gradient
	// form; the single fitted hyperplane cannot be exact, but fitting must
	// succeed and stay in a usable error band.
	samples := trainSamples(5, []int{1, 4, 8, 16}, 0, 1)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, s := range samples {
		ph := m.PredictPhases(s.Met, float64(s.BatchPerDevice), s.Devices, s.Nodes)
		if rel := math.Abs(float64(ph.Iter-s.Iter())) / float64(s.Iter()); rel > worst {
			worst = rel
		}
	}
	if worst > 0.5 {
		t.Fatalf("mixed-scenario worst error %g unusable", worst)
	}
}

func TestEvaluateTrainingLOMO(t *testing.T) {
	samples := trainSamples(6, []int{4, 8, 16}, 0.05, 7)
	ev, err := EvaluateTrainingLOMO(samples)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Overall.R2 < 0.9 {
		t.Fatalf("overall R2 = %g on mildly noisy structured data", ev.Overall.R2)
	}
	if ev.Overall.MAPE > 0.25 {
		t.Fatalf("overall MAPE = %g", ev.Overall.MAPE)
	}
	if ev.FwdOverall.N == 0 || ev.BwdOverall.N == 0 || ev.GradOverall.N == 0 {
		t.Fatal("per-phase reports missing")
	}
}

func TestPredictEpochAndThroughput(t *testing.T) {
	samples := trainSamples(4, []int{1}, 0, 1)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	met := synthMetrics(0)
	iter := float64(m.PredictIter(met, 64, 1, 1))
	epoch := float64(m.PredictEpoch(met, 1280000, 64, 1, 1))
	wantSteps := 1280000.0 / 64.0
	if math.Abs(epoch-iter*wantSteps)/epoch > 1e-9 {
		t.Fatalf("epoch %g != iter %g × steps %g", epoch, iter, wantSteps)
	}
	if m.PredictEpoch(met, 0, 64, 1, 1) != 0 {
		t.Fatal("zero dataset must yield zero epoch time")
	}
	tput := m.PredictThroughput(met, 64, 1, 1)
	if math.Abs(tput-64/iter)/tput > 1e-9 {
		t.Fatalf("throughput %g, want %g", tput, 64/iter)
	}
}

func TestTurningPoint(t *testing.T) {
	// Build a model from synthetic multi-device data where communication
	// grows steeply with N so scaling saturates.
	samples := trainSamples(5, []int{4, 8, 16, 32}, 0, 3)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	met := synthMetrics(0)
	tp, err := m.TurningPoint(met, 4, 4, 64, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if tp < 1 || tp > 64 {
		t.Fatalf("turning point %d out of range", tp)
	}
	if _, err := m.TurningPoint(met, 4, 0, 8, 0.1); err == nil {
		t.Fatal("expected invalid-topology error")
	}
	// A tiny batch (communication dominated) must saturate no later than a
	// large batch.
	tpSmall, err := m.TurningPoint(met, 1, 4, 64, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if tpSmall > tp {
		t.Fatalf("small-batch turning point %d should not exceed large-batch %d", tpSmall, tp)
	}
}

func TestSampleIter(t *testing.T) {
	s := Sample{Fwd: 1, Bwd: 2, Grad: 3}
	if s.Iter() != 6 {
		t.Fatalf("Iter = %g", s.Iter())
	}
}
