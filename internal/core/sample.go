// Package core implements ConvMeter itself: the paper's linear-regression
// performance models for ConvNet inference and training.
//
// The forward (= inference) model is Equation 3 of the paper,
//
//	T_fwd = b·(c1·F + c2·I + c3·O) + c4,
//
// with F/I/O the batch-1 FLOPs/Inputs/Outputs metrics and b the per-device
// mini-batch size. The backward pass reuses the same functional form with
// its own coefficients. The gradient update is modelled as c1·L for a
// single device and c1·L + c2·W + c3·N for N > 1, and — because backward
// compute and gradient synchronisation overlap in practice — the two are
// also fitted jointly as the paper's 7-coefficient combined model. Fitting
// is plain least squares; all hardware influence lives in the
// coefficients, all network influence in the metrics.
package core

import (
	"errors"
	"fmt"

	"convmeter/internal/metrics"
)

// Sample is one benchmark measurement: a network (represented by its
// batch-1 metrics) run at a specific configuration, with the measured
// phase times in seconds. For inference-only samples the training phases
// are zero.
type Sample struct {
	Model          string
	Met            metrics.Metrics
	Image          int // square input image edge, recorded for reporting
	BatchPerDevice int
	Devices        int // total GPUs (1 for single-device scenarios)
	Nodes          int // physical nodes (1 for single-node scenarios)
	Fwd            metrics.Seconds
	Bwd            metrics.Seconds
	Grad           metrics.Seconds
}

// Iter returns the full training-step time of the sample.
func (s Sample) Iter() metrics.Seconds { return s.Fwd + s.Bwd + s.Grad }

// validate rejects malformed samples early so fit errors are attributable.
func (s Sample) validate() error {
	if s.Model == "" {
		return errors.New("core: sample without model name")
	}
	if s.BatchPerDevice <= 0 {
		return fmt.Errorf("core: sample %s has batch %d", s.Model, s.BatchPerDevice)
	}
	if s.Devices <= 0 || s.Nodes <= 0 || s.Devices < s.Nodes {
		return fmt.Errorf("core: sample %s has devices=%d nodes=%d", s.Model, s.Devices, s.Nodes)
	}
	if s.Fwd < 0 || s.Bwd < 0 || s.Grad < 0 {
		return fmt.Errorf("core: sample %s has negative phase time", s.Model)
	}
	return nil
}

// validateAll checks a sample set.
func validateAll(samples []Sample) error {
	if len(samples) == 0 {
		return errors.New("core: empty sample set")
	}
	for i, s := range samples {
		if err := s.validate(); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
	}
	return nil
}

// modelNames returns the distinct model names in the sample set.
func modelNames(samples []Sample) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range samples {
		if !seen[s.Model] {
			seen[s.Model] = true
			out = append(out, s.Model)
		}
	}
	return out
}

// split partitions samples into those not belonging to model (train) and
// those belonging to it (held out) — the paper's leave-one-model-out rule.
func split(samples []Sample, model string) (train, held []Sample) {
	for _, s := range samples {
		if s.Model == model {
			held = append(held, s)
		} else {
			train = append(train, s)
		}
	}
	return train, held
}
