package core

import (
	"encoding/json"
	"fmt"

	"convmeter/internal/regress"
)

// Fitted models serialise to JSON so a platform's coefficients can be
// computed once (the paper's §3.4 "we only need to compute and store a
// few coefficients") and shipped with a deployment — the whole persisted
// artefact of a ConvMeter installation is a handful of floats.

// inferenceModelJSON is the wire form of InferenceModel.
type inferenceModelJSON struct {
	Kind string    `json:"kind"`
	Coef []float64 `json:"coef"`
}

// MarshalJSON implements json.Marshaler.
func (m *InferenceModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(inferenceModelJSON{Kind: "convmeter-inference-v1", Coef: m.reg.Coef})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *InferenceModel) UnmarshalJSON(data []byte) error {
	var w inferenceModelJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if w.Kind != "convmeter-inference-v1" {
		return fmt.Errorf("core: unexpected model kind %q", w.Kind)
	}
	if len(w.Coef) != 4 {
		return fmt.Errorf("core: inference model has %d coefficients, want 4", len(w.Coef))
	}
	m.reg = &regress.Model{Coef: w.Coef}
	return nil
}

// trainingModelJSON is the wire form of TrainingModel.
type trainingModelJSON struct {
	Kind     string    `json:"kind"`
	Multi    bool      `json:"multi"`
	Fwd      []float64 `json:"fwd"`
	Bwd      []float64 `json:"bwd"`
	Grad     []float64 `json:"grad"`
	Combined []float64 `json:"combined"`
}

// MarshalJSON implements json.Marshaler.
func (m *TrainingModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(trainingModelJSON{
		Kind: "convmeter-training-v1", Multi: m.multi,
		Fwd: m.fwd.Coef, Bwd: m.bwd.Coef, Grad: m.grad.Coef, Combined: m.combined.Coef,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *TrainingModel) UnmarshalJSON(data []byte) error {
	var w trainingModelJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if w.Kind != "convmeter-training-v1" {
		return fmt.Errorf("core: unexpected model kind %q", w.Kind)
	}
	wantGrad, wantComb := 2, 5
	if w.Multi {
		wantGrad, wantComb = 4, 7
	}
	if len(w.Fwd) != 4 || len(w.Bwd) != 4 || len(w.Grad) != wantGrad || len(w.Combined) != wantComb {
		return fmt.Errorf("core: training model coefficient layout invalid (fwd %d, bwd %d, grad %d, combined %d)",
			len(w.Fwd), len(w.Bwd), len(w.Grad), len(w.Combined))
	}
	m.multi = w.Multi
	m.fwd = &regress.Model{Coef: w.Fwd}
	m.bwd = &regress.Model{Coef: w.Bwd}
	m.grad = &regress.Model{Coef: w.Grad}
	m.combined = &regress.Model{Coef: w.Combined}
	return nil
}
