package core

import (
	"fmt"
	"sort"

	"convmeter/internal/regress"
)

// PredPair is one (measured, predicted) point, kept for scatter outputs.
type PredPair struct {
	Model  string
	Actual float64
	Pred   float64
}

// Evaluation is the result of a leave-one-model-out accuracy assessment:
// per-ConvNet error reports (the layout of the paper's Tables 1 and 3)
// plus the pooled overall report and the raw scatter pairs.
type Evaluation struct {
	PerModel map[string]regress.Report
	Overall  regress.Report
	Pairs    []PredPair
}

// Models returns the evaluated model names, sorted.
func (e *Evaluation) Models() []string {
	out := make([]string, 0, len(e.PerModel))
	for m := range e.PerModel {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// EvaluateLOMO runs the paper's leave-one-model-out protocol with a
// caller-supplied fit-and-predict: for each distinct model, fit on all
// other models' samples and predict the held-out ones. It is exported so
// baseline predictors are evaluated under the identical protocol.
func EvaluateLOMO(samples []Sample, predictHeld func(train, held []Sample) ([]float64, error), actual func(Sample) float64) (*Evaluation, error) {
	if err := validateAll(samples); err != nil {
		return nil, err
	}
	names := modelNames(samples)
	if len(names) < 2 {
		return nil, fmt.Errorf("core: LOMO needs >=2 distinct models, got %d", len(names))
	}
	ev := &Evaluation{PerModel: make(map[string]regress.Report, len(names))}
	var allActual, allPred []float64
	for _, name := range names {
		train, held := split(samples, name)
		preds, err := predictHeld(train, held)
		if err != nil {
			return nil, fmt.Errorf("core: LOMO for %s: %w", name, err)
		}
		acts := make([]float64, len(held))
		for i, s := range held {
			acts[i] = actual(s)
			ev.Pairs = append(ev.Pairs, PredPair{Model: name, Actual: acts[i], Pred: preds[i]})
		}
		rep, err := regress.Evaluate(acts, preds)
		if err != nil {
			return nil, fmt.Errorf("core: LOMO report for %s: %w", name, err)
		}
		ev.PerModel[name] = rep
		allActual = append(allActual, acts...)
		allPred = append(allPred, preds...)
	}
	overall, err := regress.Evaluate(allActual, allPred)
	if err != nil {
		return nil, err
	}
	ev.Overall = overall
	return ev, nil
}

// EvaluateInferenceLOMO measures inference-prediction accuracy with the
// leave-one-model-out protocol (paper Table 1 / Figure 3).
func EvaluateInferenceLOMO(samples []Sample) (*Evaluation, error) {
	return EvaluateLOMO(samples,
		func(train, held []Sample) ([]float64, error) {
			m, err := FitInference(train)
			if err != nil {
				return nil, err
			}
			preds := make([]float64, len(held))
			for i, s := range held {
				preds[i] = float64(m.Predict(s.Met, float64(s.BatchPerDevice)))
			}
			return preds, nil
		},
		func(s Sample) float64 { return float64(s.Fwd) })
}

// TrainEvaluation extends Evaluation with per-phase overall reports
// (the paper's Figures 5 and 7 panels).
type TrainEvaluation struct {
	Evaluation  // per-model + overall for the full training step
	FwdOverall  regress.Report
	BwdOverall  regress.Report
	GradOverall regress.Report
}

// EvaluateTrainingLOMO measures training-step prediction accuracy with
// the leave-one-model-out protocol (paper Table 3 / Figures 5 and 7).
func EvaluateTrainingLOMO(samples []Sample) (*TrainEvaluation, error) {
	var fa, fp, ba, bp, ga, gp []float64
	ev, err := EvaluateLOMO(samples,
		func(train, held []Sample) ([]float64, error) {
			m, err := FitTraining(train)
			if err != nil {
				return nil, err
			}
			preds := make([]float64, len(held))
			for i, s := range held {
				ph := m.PredictPhases(s.Met, float64(s.BatchPerDevice), s.Devices, s.Nodes)
				preds[i] = float64(ph.Iter)
				fa = append(fa, float64(s.Fwd))
				fp = append(fp, float64(ph.Fwd))
				ba = append(ba, float64(s.Bwd))
				bp = append(bp, float64(ph.Bwd))
				ga = append(ga, float64(s.Grad))
				gp = append(gp, float64(ph.Grad))
			}
			return preds, nil
		},
		func(s Sample) float64 { return float64(s.Iter()) })
	if err != nil {
		return nil, err
	}
	out := &TrainEvaluation{Evaluation: *ev}
	if out.FwdOverall, err = regress.Evaluate(fa, fp); err != nil {
		return nil, err
	}
	if out.BwdOverall, err = regress.Evaluate(ba, bp); err != nil {
		return nil, err
	}
	if out.GradOverall, err = regress.Evaluate(ga, gp); err != nil {
		return nil, err
	}
	return out, nil
}
