package core

import (
	"errors"
	"fmt"

	"convmeter/internal/metrics"
	"convmeter/internal/regress"
)

// InferenceModel is the fitted forward-pass predictor (paper Eq. 2/3):
// four coefficients over [F·b, I·b, O·b, 1].
type InferenceModel struct {
	reg *regress.Model
}

// FitInference fits the inference model on forward-pass measurements.
// Following the paper's evaluation (which weights "large and small errors
// equally" via MAPE), the regression minimises squared *relative*
// residuals; see FitInferenceOLS for the unweighted variant.
func FitInference(samples []Sample) (*InferenceModel, error) {
	return fitInference(samples, regress.FitRelative)
}

// FitInferenceOLS fits the inference model with plain (unweighted)
// ordinary least squares — kept for the fitting-objective ablation.
func FitInferenceOLS(samples []Sample) (*InferenceModel, error) {
	return fitInference(samples, regress.Fit)
}

func fitInference(samples []Sample, fit func([][]float64, []float64) (*regress.Model, error)) (*InferenceModel, error) {
	if err := validateAll(samples); err != nil {
		return nil, err
	}
	feats := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		feats[i] = s.Met.Vector(float64(s.BatchPerDevice))
		y[i] = float64(s.Fwd)
	}
	m, err := fit(feats, y)
	if err != nil {
		return nil, fmt.Errorf("core: inference fit: %w", err)
	}
	return &InferenceModel{reg: m}, nil
}

// InferenceCoefStats fits the inference model and additionally returns
// per-coefficient standard errors and t-statistics (computed under the
// same relative weighting as FitInference). The t-values show which
// metrics carry signal on a platform — e.g. Inputs/Outputs dominating
// FLOPs on bandwidth-bound devices, the paper's Figure 2 story in
// numbers.
func InferenceCoefStats(samples []Sample) (*InferenceModel, *regress.CoefStats, error) {
	if err := validateAll(samples); err != nil {
		return nil, nil, err
	}
	feats := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	w := make([]float64, len(samples))
	for i, s := range samples {
		feats[i] = s.Met.Vector(float64(s.BatchPerDevice))
		y[i] = float64(s.Fwd)
		v := float64(s.Fwd)
		if v < 1e-12 {
			v = 1e-12
		}
		w[i] = 1 / (v * v)
	}
	m, stats, err := regress.FitStats(feats, y, w)
	if err != nil {
		return nil, nil, fmt.Errorf("core: inference fit: %w", err)
	}
	return &InferenceModel{reg: m}, stats, nil
}

// Coefficients returns the fitted c1..c4.
func (m *InferenceModel) Coefficients() []float64 {
	return append([]float64(nil), m.reg.Coef...)
}

// Predict estimates the forward-pass/inference time for a network with
// metrics met at per-device mini-batch b.
func (m *InferenceModel) Predict(met metrics.Metrics, b float64) metrics.Seconds {
	return metrics.Seconds(m.reg.Predict(met.Vector(b)))
}

// Phases is a predicted training-step decomposition.
type Phases struct {
	Fwd, Bwd, Grad, Iter metrics.Seconds
}

// TrainingModel is the fitted training-step predictor. The forward and
// backward passes use the Eq. 2 form; the gradient update uses the L (or
// L/W/N) form; Iter predictions use forward plus the paper's combined
// 7-coefficient backward+gradient model, which captures the overlap of
// the two phases.
type TrainingModel struct {
	fwd      *regress.Model
	bwd      *regress.Model
	grad     *regress.Model
	combined *regress.Model
	multi    bool // whether the multi-device gradient layout was used
}

// gradVector picks the single- or multi-device gradient feature layout.
func gradVector(met metrics.Metrics, devices int, multi bool) []float64 {
	if multi {
		return met.GradVectorMulti(devices)
	}
	return met.GradVectorSingle()
}

// combinedVector picks the matching combined backward+gradient layout:
// [F·b, I·b, O·b, L, 1] single-device, or the paper's seven-coefficient
// [F·b, I·b, O·b, L, W, N, 1] for multi-device data.
func combinedVector(met metrics.Metrics, b float64, devices int, multi bool) []float64 {
	s := met.Scale(b)
	if multi {
		return met.CombinedVector(b, devices)
	}
	return []float64{float64(s.FLOPs), float64(s.Inputs), float64(s.Outputs), float64(met.Layers), 1}
}

// FitTraining fits the training-step model. The gradient layout is chosen
// from the data: if every sample ran on the same device count the
// single-device form (T_grad = c1·L) is used, otherwise the multi-device
// form (c1·L + c2·W + c3·N), as in the paper's case split.
func FitTraining(samples []Sample) (*TrainingModel, error) {
	if err := validateAll(samples); err != nil {
		return nil, err
	}
	multi := false
	for _, s := range samples {
		if s.Devices > 1 {
			multi = true
			break
		}
	}
	n := len(samples)
	fwdF := make([][]float64, n)
	bwdF := make([][]float64, n)
	gradF := make([][]float64, n)
	combF := make([][]float64, n)
	yFwd := make([]float64, n)
	yBwd := make([]float64, n)
	yGrad := make([]float64, n)
	yComb := make([]float64, n)
	for i, s := range samples {
		b := float64(s.BatchPerDevice)
		fwdF[i] = s.Met.Vector(b)
		bwdF[i] = s.Met.Vector(b)
		gradF[i] = gradVector(s.Met, s.Devices, multi)
		combF[i] = combinedVector(s.Met, b, s.Devices, multi)
		yFwd[i] = float64(s.Fwd)
		yBwd[i] = float64(s.Bwd)
		yGrad[i] = float64(s.Grad)
		yComb[i] = float64(s.Bwd + s.Grad)
	}
	fwd, err := regress.FitRelative(fwdF, yFwd)
	if err != nil {
		return nil, fmt.Errorf("core: forward fit: %w", err)
	}
	bwd, err := regress.FitRelative(bwdF, yBwd)
	if err != nil {
		return nil, fmt.Errorf("core: backward fit: %w", err)
	}
	grad, err := regress.FitRelative(gradF, yGrad)
	if err != nil {
		return nil, fmt.Errorf("core: gradient fit: %w", err)
	}
	comb, err := regress.FitRelative(combF, yComb)
	if err != nil {
		return nil, fmt.Errorf("core: combined fit: %w", err)
	}
	return &TrainingModel{fwd: fwd, bwd: bwd, grad: grad, combined: comb, multi: multi}, nil
}

// Multi reports whether the model was fitted with the multi-device
// gradient layout.
func (m *TrainingModel) Multi() bool { return m.multi }

// PredictPhases estimates the per-phase times of a training step. The
// reported Iter uses the combined backward+gradient model added to the
// forward prediction (overlap-aware), so Iter generally differs slightly
// from Fwd+Bwd+Grad.
func (m *TrainingModel) PredictPhases(met metrics.Metrics, batchPerDevice float64, devices, nodes int) Phases {
	p := Phases{
		Fwd:  metrics.Seconds(m.fwd.Predict(met.Vector(batchPerDevice))),
		Bwd:  metrics.Seconds(m.bwd.Predict(met.Vector(batchPerDevice))),
		Grad: metrics.Seconds(m.grad.Predict(gradVector(met, devices, m.multi))),
	}
	p.Iter = p.Fwd + metrics.Seconds(m.combined.Predict(combinedVector(met, batchPerDevice, devices, m.multi)))
	return p
}

// PredictIter estimates the full training-step time.
func (m *TrainingModel) PredictIter(met metrics.Metrics, batchPerDevice float64, devices, nodes int) metrics.Seconds {
	return m.PredictPhases(met, batchPerDevice, devices, nodes).Iter
}

// PredictEpoch estimates one epoch over a dataset of datasetSize images:
// D/(B·N) training steps (paper §2).
func (m *TrainingModel) PredictEpoch(met metrics.Metrics, datasetSize int, batchPerDevice float64, devices, nodes int) metrics.Seconds {
	if datasetSize <= 0 {
		return 0
	}
	steps := float64(datasetSize) / (batchPerDevice * float64(devices))
	return metrics.Seconds(steps * float64(m.PredictIter(met, batchPerDevice, devices, nodes)))
}

// PredictThroughput estimates training throughput in images/second — the
// quantity plotted in the paper's scalability figures.
func (m *TrainingModel) PredictThroughput(met metrics.Metrics, batchPerDevice float64, devices, nodes int) float64 {
	iter := float64(m.PredictIter(met, batchPerDevice, devices, nodes))
	if iter <= 0 {
		return 0
	}
	return batchPerDevice * float64(devices) / iter
}

// StrongScalingPoint is one entry of a strong-scaling curve.
type StrongScalingPoint struct {
	Nodes          int
	Devices        int
	BatchPerDevice float64         // global batch divided over the devices
	Iter           metrics.Seconds // predicted step time
	Throughput     float64         // images/s
	Speedup        float64         // vs the first point of the curve
}

// PredictStrongScaling predicts how the training of a *fixed global
// batch* scales over node counts — the strong-scaling capability the
// paper claims in §4.3 ("our performance model can predict the scaling
// behavior of nodes for a fixed global batch size"). The per-device
// mini-batch b = G/N shrinks as nodes are added, which is exactly where
// the batch-size parameterisation of Eq. 3 (metrics counted at batch 1,
// scaled analytically) pays off: b may become fractional without any
// re-benchmarking.
func (m *TrainingModel) PredictStrongScaling(met metrics.Metrics, globalBatch float64, gpusPerNode int, nodeCounts []int) ([]StrongScalingPoint, error) {
	if globalBatch <= 0 || gpusPerNode <= 0 || len(nodeCounts) == 0 {
		return nil, errors.New("core: invalid strong-scaling query")
	}
	var out []StrongScalingPoint
	for _, n := range nodeCounts {
		if n <= 0 {
			return nil, fmt.Errorf("core: node count %d", n)
		}
		devices := n * gpusPerNode
		b := globalBatch / float64(devices)
		if b <= 0 {
			return nil, fmt.Errorf("core: global batch %g too small for %d devices", globalBatch, devices)
		}
		iter := m.PredictIter(met, b, devices, n)
		p := StrongScalingPoint{
			Nodes: n, Devices: devices, BatchPerDevice: b, Iter: iter,
		}
		if iter > 0 {
			p.Throughput = globalBatch / float64(iter)
		}
		out = append(out, p)
	}
	base := float64(out[0].Iter)
	for i := range out {
		if out[i].Iter > 0 {
			out[i].Speedup = base / float64(out[i].Iter)
		}
	}
	return out, nil
}

// TurningPoint scans node counts 1..maxNodes (gpusPerNode devices each)
// and returns the first node count at which adding a node improves
// throughput by less than relGain (e.g. 0.1 for 10 %) — the paper's
// diminishing-return point for infrastructure planning. If throughput
// keeps improving it returns maxNodes.
func (m *TrainingModel) TurningPoint(met metrics.Metrics, batchPerDevice float64, gpusPerNode, maxNodes int, relGain float64) (int, error) {
	if maxNodes < 1 || gpusPerNode < 1 {
		return 0, errors.New("core: invalid topology for turning point")
	}
	prev := m.PredictThroughput(met, batchPerDevice, gpusPerNode, 1)
	for n := 2; n <= maxNodes; n++ {
		cur := m.PredictThroughput(met, batchPerDevice, n*gpusPerNode, n)
		if cur <= prev*(1+relGain) {
			return n - 1, nil
		}
		prev = cur
	}
	return maxNodes, nil
}
