package core

import (
	"encoding/json"
	"math"
	"testing"
)

func TestInferenceModelJSONRoundTrip(t *testing.T) {
	samples := linearInferenceSamples(5, []int{1, 4, 16, 64})
	m, err := FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back InferenceModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	met := synthMetrics(2)
	for _, b := range []float64{1, 64, 2048} {
		if m.Predict(met, b) != back.Predict(met, b) {
			t.Fatalf("prediction changed over round trip at b=%g", b)
		}
	}
}

func TestInferenceModelJSONRejectsBadPayloads(t *testing.T) {
	var m InferenceModel
	if err := json.Unmarshal([]byte(`{"kind":"other","coef":[1,2,3,4]}`), &m); err == nil {
		t.Fatal("expected kind rejection")
	}
	if err := json.Unmarshal([]byte(`{"kind":"convmeter-inference-v1","coef":[1,2]}`), &m); err == nil {
		t.Fatal("expected coefficient-count rejection")
	}
	if err := json.Unmarshal([]byte(`not json`), &m); err == nil {
		t.Fatal("expected syntax rejection")
	}
}

func TestTrainingModelJSONRoundTrip(t *testing.T) {
	for _, devs := range [][]int{{1}, {4, 8, 16}} {
		samples := trainSamples(5, devs, 0, 1)
		m, err := FitTraining(samples)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back TrainingModel
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Multi() != m.Multi() {
			t.Fatal("multi flag lost")
		}
		met := synthMetrics(1)
		a := m.PredictPhases(met, 32, devs[len(devs)-1], 2)
		b := back.PredictPhases(met, 32, devs[len(devs)-1], 2)
		if a != b {
			t.Fatalf("phases changed over round trip: %+v vs %+v", a, b)
		}
	}
}

func TestTrainingModelJSONLayoutValidation(t *testing.T) {
	var m TrainingModel
	bad := `{"kind":"convmeter-training-v1","multi":true,"fwd":[1,2,3,4],"bwd":[1,2,3,4],"grad":[1,2],"combined":[1,2,3,4,5,6,7]}`
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Fatal("expected layout rejection (multi grad must have 4 coefficients)")
	}
}

func TestPredictStrongScaling(t *testing.T) {
	samples := trainSamples(5, []int{4, 8, 16, 32}, 0, 1)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	met := synthMetrics(1)
	points, err := m.PredictStrongScaling(met, 1024, 4, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	// Per-device batch must halve as nodes double.
	if points[0].BatchPerDevice != 256 || points[3].BatchPerDevice != 32 {
		t.Fatalf("batch split wrong: %+v", points)
	}
	// Step time must shrink with more nodes (strong scaling), with
	// sub-linear speedup (communication terms grow with N).
	for i := 1; i < len(points); i++ {
		if points[i].Iter >= points[i-1].Iter {
			t.Fatalf("strong scaling not improving at %d nodes", points[i].Nodes)
		}
	}
	last := points[len(points)-1]
	ideal := float64(last.Devices) / float64(points[0].Devices)
	if last.Speedup >= ideal {
		t.Fatalf("speedup %g should be sub-linear (< %g)", last.Speedup, ideal)
	}
	if last.Speedup <= 1 {
		t.Fatalf("speedup %g should exceed 1", last.Speedup)
	}
	// Fractional per-device batches are legal.
	frac, err := m.PredictStrongScaling(met, 10, 4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if frac[1].BatchPerDevice != 1.25 {
		t.Fatalf("fractional batch = %g", frac[1].BatchPerDevice)
	}
}

func TestPredictStrongScalingErrors(t *testing.T) {
	samples := trainSamples(4, []int{4, 8}, 0, 1)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	met := synthMetrics(0)
	if _, err := m.PredictStrongScaling(met, 0, 4, []int{1}); err == nil {
		t.Fatal("expected global-batch error")
	}
	if _, err := m.PredictStrongScaling(met, 64, 0, []int{1}); err == nil {
		t.Fatal("expected gpus error")
	}
	if _, err := m.PredictStrongScaling(met, 64, 4, nil); err == nil {
		t.Fatal("expected empty-nodes error")
	}
	if _, err := m.PredictStrongScaling(met, 64, 4, []int{0}); err == nil {
		t.Fatal("expected zero-node error")
	}
}

func TestStrongVsWeakScalingShapes(t *testing.T) {
	// Weak scaling (fixed per-device batch) must reach higher absolute
	// throughput than strong scaling of a modest global batch on the same
	// topology — the standard relationship.
	samples := trainSamples(5, []int{4, 8, 16, 32}, 0, 2)
	m, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	met := synthMetrics(2)
	const nodes = 8
	weak := m.PredictThroughput(met, 64, nodes*4, nodes)
	strong, err := m.PredictStrongScaling(met, 256, 4, []int{nodes})
	if err != nil {
		t.Fatal(err)
	}
	if !(weak > strong[0].Throughput) {
		t.Fatalf("weak scaling throughput %g should exceed strong %g", weak, strong[0].Throughput)
	}
	if math.IsNaN(strong[0].Throughput) {
		t.Fatal("NaN throughput")
	}
}
