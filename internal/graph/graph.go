package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Node is a single operation instance inside a Graph.
type Node struct {
	ID     int    // index into Graph.Nodes
	Name   string // human-readable label, e.g. "layer1.0.conv2"
	Op     Op
	Inputs []int // IDs of producer nodes, empty only for the input op
	Out    Shape // inferred output shape for batch size 1
}

// Graph is a validated ConvNet computational graph. Nodes are stored in
// topological order (every node's inputs precede it), which the builder
// guarantees by construction and Validate re-checks.
//
// The unexported fields cache every node's producer shapes in one
// contiguous arena so the per-node query methods (NodeFLOPs,
// NodeInputElems) are allocation-free — they sit inside the hardware
// model's innermost loops. The arena is built lazily on first query and
// assumes Nodes is immutable from then on, which both construction
// paths (the builder and UnmarshalJSON) guarantee.
type Graph struct {
	Name  string
	Nodes []*Node

	shapesBuilt atomic.Uint32
	shapesMu    sync.Mutex
	inOffs      []int32 // len(Nodes)+1 offsets into inBuf
	inBuf       []Shape // concatenated producer shapes, node-major
}

// InputShape returns the shape of the graph's input tensor.
func (g *Graph) InputShape() (Shape, error) {
	if len(g.Nodes) == 0 {
		return Shape{}, errors.New("graph: empty graph")
	}
	in, ok := g.Nodes[0].Op.(*InputOp)
	if !ok {
		return Shape{}, fmt.Errorf("graph: first node is %s, want input", g.Nodes[0].Op.Kind())
	}
	return in.Shape, nil
}

// OutputShape returns the shape produced by the final node.
func (g *Graph) OutputShape() (Shape, error) {
	if len(g.Nodes) == 0 {
		return Shape{}, errors.New("graph: empty graph")
	}
	return g.Nodes[len(g.Nodes)-1].Out, nil
}

// Validate checks structural invariants: exactly one input op at index 0,
// topological ordering, in-range references, and consistent shapes.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return errors.New("graph: empty graph")
	}
	if _, ok := g.Nodes[0].Op.(*InputOp); !ok {
		return fmt.Errorf("graph: node 0 is %s, want input", g.Nodes[0].Op.Kind())
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph: node %d has ID %d", i, n.ID)
		}
		if _, ok := n.Op.(*InputOp); ok && i != 0 {
			return fmt.Errorf("graph: extra input op at node %d", i)
		}
		inShapes := make([]Shape, len(n.Inputs))
		for j, id := range n.Inputs {
			if id < 0 || id >= i {
				return fmt.Errorf("graph: node %d (%s) references %d, breaking topological order", i, n.Name, id)
			}
			inShapes[j] = g.Nodes[id].Out
		}
		out, err := n.Op.OutShape(inShapes)
		if err != nil {
			return fmt.Errorf("graph: node %d (%s): %w", i, n.Name, err)
		}
		if out != n.Out {
			return fmt.Errorf("graph: node %d (%s) shape %v, inferred %v", i, n.Name, n.Out, out)
		}
	}
	return nil
}

// inShapes gathers the output shapes of a node's producers. The slice
// aliases the graph's shape arena: it is valid until the next call only
// in the sense that callers must not mutate it, and the call itself
// never allocates.
func (g *Graph) inShapes(n *Node) []Shape {
	if g.shapesBuilt.Load() == 0 {
		g.buildShapes()
	}
	return g.inBuf[g.inOffs[n.ID]:g.inOffs[n.ID+1]]
}

// buildShapes populates the shape arena. Double-checked under the
// mutex so concurrent first queries build it exactly once; the atomic
// flag publishes the finished arena to the lock-free fast path.
func (g *Graph) buildShapes() {
	g.shapesMu.Lock()
	defer g.shapesMu.Unlock()
	if g.shapesBuilt.Load() == 1 {
		return
	}
	offs := make([]int32, len(g.Nodes)+1)
	total := 0
	for i, n := range g.Nodes {
		offs[i] = int32(total)
		total += len(n.Inputs)
	}
	offs[len(g.Nodes)] = int32(total)
	buf := make([]Shape, total)
	for _, n := range g.Nodes {
		off := offs[n.ID]
		for j, id := range n.Inputs {
			buf[off+int32(j)] = g.Nodes[id].Out
		}
	}
	g.inOffs, g.inBuf = offs, buf
	g.shapesBuilt.Store(1)
}

// NodeFLOPs returns the per-image FLOPs of node i.
func (g *Graph) NodeFLOPs(i int) int64 {
	n := g.Nodes[i]
	return n.Op.FLOPs(g.inShapes(n), n.Out)
}

// NodeInputElems returns the total number of input tensor elements read by
// node i (summed over all of its producers), per image.
func (g *Graph) NodeInputElems(i int) int64 {
	n := g.Nodes[i]
	var total int64
	for _, s := range g.inShapes(n) {
		total += s.Elems()
	}
	return total
}

// TotalParams returns the number of learnable parameters in the graph.
func (g *Graph) TotalParams() int64 {
	var total int64
	for _, n := range g.Nodes {
		total += n.Op.Params()
	}
	return total
}

// TotalFLOPs returns the per-image FLOPs summed over every node.
func (g *Graph) TotalFLOPs() int64 {
	var total int64
	for i := range g.Nodes {
		total += g.NodeFLOPs(i)
	}
	return total
}

// ParamLayers returns the number of layers carrying learnable parameters
// (convolutions, linear layers, batch norms) — the granularity at which
// Horovod-style frameworks synchronise gradients, and the paper's L metric.
func (g *Graph) ParamLayers() int {
	n := 0
	for _, node := range g.Nodes {
		if node.Op.Params() > 0 {
			n++
		}
	}
	return n
}

// CountKind returns the number of nodes whose op kind equals kind.
func (g *Graph) CountKind(kind string) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Op.Kind() == kind {
			n++
		}
	}
	return n
}
