package graph

// Transformer operations — the paper's future-work extension ("we aim to
// analyze other DNNs, such as language models and vision transformers").
// Token sequences are represented as C×T×1 tensors: C is the embedding
// dimension, T the token count. The same static-metrics machinery then
// applies unchanged; vision transformers join the zoo in
// internal/models/vit.go.

import "fmt"

// LayerNormOp normalises over the embedding dimension with a learnable
// scale and shift per channel.
type LayerNormOp struct {
	Dim int `json:"dim"`
}

// Kind implements Op.
func (o *LayerNormOp) Kind() string { return "layernorm" }

// OutShape implements Op.
func (o *LayerNormOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].C != o.Dim {
		return Shape{}, fmt.Errorf("graph: layernorm expects dim %d, got %d", o.Dim, in[0].C)
	}
	return in[0], nil
}

// FLOPs implements Op: mean, variance, normalise, scale, shift — about
// five operations per element.
func (o *LayerNormOp) FLOPs(in []Shape, out Shape) int64 { return 5 * out.Elems() }

// Params implements Op.
func (o *LayerNormOp) Params() int64 { return 2 * int64(o.Dim) }

// TokenLinearOp applies a fully connected layer independently to every
// token of a C×T×1 sequence (PyTorch's nn.Linear on the last dimension).
type TokenLinearOp struct {
	In   int  `json:"in"`
	Out  int  `json:"out"`
	Bias bool `json:"bias"`
}

// Kind implements Op.
func (o *TokenLinearOp) Kind() string { return "token_linear" }

// OutShape implements Op.
func (o *TokenLinearOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].C != o.In || in[0].W != 1 {
		return Shape{}, fmt.Errorf("graph: token linear expects %dxTx1, got %v", o.In, in[0])
	}
	return Shape{C: o.Out, H: in[0].H, W: 1}, nil
}

// FLOPs implements Op.
func (o *TokenLinearOp) FLOPs(in []Shape, out Shape) int64 {
	perToken := 2 * int64(o.In) * int64(o.Out)
	if o.Bias {
		perToken += int64(o.Out)
	}
	return perToken * int64(in[0].H)
}

// Params implements Op.
func (o *TokenLinearOp) Params() int64 {
	p := int64(o.In) * int64(o.Out)
	if o.Bias {
		p += int64(o.Out)
	}
	return p
}

// AttentionCoreOp is the scaled-dot-product attention core: it consumes a
// fused QKV sequence (3·Dim × T × 1) and produces the attended values
// (Dim × T × 1). The surrounding projections are separate TokenLinear
// ops, mirroring how frameworks decompose multi-head attention.
type AttentionCoreOp struct {
	Dim   int `json:"dim"`
	Heads int `json:"heads"`
}

// Kind implements Op.
func (o *AttentionCoreOp) Kind() string { return "attention" }

// OutShape implements Op.
func (o *AttentionCoreOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.Dim <= 0 || o.Heads <= 0 || o.Dim%o.Heads != 0 {
		return Shape{}, fmt.Errorf("graph: attention dim %d / heads %d invalid", o.Dim, o.Heads)
	}
	if in[0].C != 3*o.Dim || in[0].W != 1 {
		return Shape{}, fmt.Errorf("graph: attention expects %dxTx1 fused QKV, got %v", 3*o.Dim, in[0])
	}
	return Shape{C: o.Dim, H: in[0].H, W: 1}, nil
}

// FLOPs implements Op: QKᵀ and AV are each 2·T²·Dim multiply-adds, plus
// a ~5-op softmax over every T×T attention score per head.
func (o *AttentionCoreOp) FLOPs(in []Shape, out Shape) int64 {
	t := int64(in[0].H)
	return 4*t*t*int64(o.Dim) + 5*t*t*int64(o.Heads)
}

// Params implements Op.
func (o *AttentionCoreOp) Params() int64 { return 0 }

// ToTokensOp converts a patch-embedded Dim×gh×gw feature map into a token
// sequence Dim×(gh·gw+1)×1, prepending a learnable class token and adding
// learnable position embeddings (the ViT input pipeline).
type ToTokensOp struct {
	Dim    int `json:"dim"`
	Tokens int `json:"tokens"` // gh·gw + 1, fixed at construction
}

// Kind implements Op.
func (o *ToTokensOp) Kind() string { return "to_tokens" }

// OutShape implements Op.
func (o *ToTokensOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].C != o.Dim {
		return Shape{}, fmt.Errorf("graph: to_tokens expects dim %d, got %d", o.Dim, in[0].C)
	}
	if in[0].H*in[0].W+1 != o.Tokens {
		return Shape{}, fmt.Errorf("graph: to_tokens built for %d tokens, input yields %d",
			o.Tokens, in[0].H*in[0].W+1)
	}
	return Shape{C: o.Dim, H: o.Tokens, W: 1}, nil
}

// FLOPs implements Op: one add per element for the position embedding.
func (o *ToTokensOp) FLOPs(in []Shape, out Shape) int64 { return out.Elems() }

// Params implements Op: position embedding (Tokens×Dim) plus the class
// token (Dim).
func (o *ToTokensOp) Params() int64 {
	return int64(o.Tokens)*int64(o.Dim) + int64(o.Dim)
}

// TakeTokenOp selects a single token (the class token) from a sequence,
// producing a C×1×1 tensor for the classification head.
type TakeTokenOp struct{}

// Kind implements Op.
func (o *TakeTokenOp) Kind() string { return "take_token" }

// OutShape implements Op.
func (o *TakeTokenOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].W != 1 || in[0].H < 1 {
		return Shape{}, fmt.Errorf("graph: take_token expects a CxTx1 sequence, got %v", in[0])
	}
	return Shape{C: in[0].C, H: 1, W: 1}, nil
}

// FLOPs implements Op.
func (o *TakeTokenOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *TakeTokenOp) Params() int64 { return 0 }
