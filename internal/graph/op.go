package graph

import (
	"fmt"
)

// Op is a tensor operation in a ConvNet graph. Implementations provide
// shape inference and the static accounting (FLOPs, parameters) the
// performance model is built on. All counts are per image (batch size 1).
type Op interface {
	// Kind returns the operation's type tag (stable across serialisation).
	Kind() string
	// OutShape infers the output shape from the input shapes.
	OutShape(in []Shape) (Shape, error)
	// FLOPs returns floating-point operations for one image.
	FLOPs(in []Shape, out Shape) int64
	// Params returns the number of learnable parameters.
	Params() int64
}

func needInputs(kind string, in []Shape, want int) error {
	if len(in) != want {
		return fmt.Errorf("graph: %s expects %d input(s), got %d", kind, want, len(in))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Input

// InputOp is the source node carrying the network's input tensor.
type InputOp struct {
	Shape Shape `json:"shape"`
}

// Kind implements Op.
func (o *InputOp) Kind() string { return "input" }

// OutShape implements Op.
func (o *InputOp) OutShape(in []Shape) (Shape, error) {
	if len(in) != 0 {
		return Shape{}, fmt.Errorf("graph: input op takes no inputs, got %d", len(in))
	}
	if !o.Shape.Valid() {
		return Shape{}, fmt.Errorf("graph: invalid input shape %v", o.Shape)
	}
	return o.Shape, nil
}

// FLOPs implements Op.
func (o *InputOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *InputOp) Params() int64 { return 0 }

// ---------------------------------------------------------------------------
// Conv2d

// Conv2dOp is a 2-D convolution with optional grouping, stride, padding and
// dilation — the layer type that dominates ConvNet runtime and whose input
// and output tensor sizes define the paper's I and O metrics.
type Conv2dOp struct {
	InC       int  `json:"in_c"`
	OutC      int  `json:"out_c"`
	KH        int  `json:"kh"`
	KW        int  `json:"kw"`
	StrideH   int  `json:"stride_h"`
	StrideW   int  `json:"stride_w"`
	PadH      int  `json:"pad_h"`
	PadW      int  `json:"pad_w"`
	DilationH int  `json:"dilation_h"`
	DilationW int  `json:"dilation_w"`
	Groups    int  `json:"groups"`
	Bias      bool `json:"bias"`
}

// Kind implements Op.
func (o *Conv2dOp) Kind() string { return "conv2d" }

// OutShape implements Op.
func (o *Conv2dOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.Groups <= 0 {
		return Shape{}, fmt.Errorf("graph: conv2d groups must be positive, got %d", o.Groups)
	}
	if o.KH < 1 || o.KW < 1 || o.StrideH < 1 || o.StrideW < 1 || o.DilationH < 1 || o.DilationW < 1 || o.PadH < 0 || o.PadW < 0 {
		return Shape{}, fmt.Errorf("graph: conv2d geometry invalid (k %dx%d, stride %dx%d, dilation %dx%d, pad %dx%d)",
			o.KH, o.KW, o.StrideH, o.StrideW, o.DilationH, o.DilationW, o.PadH, o.PadW)
	}
	if o.InC%o.Groups != 0 || o.OutC%o.Groups != 0 {
		return Shape{}, fmt.Errorf("graph: conv2d channels (%d→%d) not divisible by groups %d", o.InC, o.OutC, o.Groups)
	}
	if in[0].C != o.InC {
		return Shape{}, fmt.Errorf("graph: conv2d expects %d input channels, got %d", o.InC, in[0].C)
	}
	h := convOut(in[0].H, o.KH, o.StrideH, o.PadH, o.DilationH)
	w := convOut(in[0].W, o.KW, o.StrideW, o.PadW, o.DilationW)
	out := Shape{C: o.OutC, H: h, W: w}
	if !out.Valid() {
		return Shape{}, fmt.Errorf("graph: conv2d produces invalid shape %v from input %v", out, in[0])
	}
	return out, nil
}

// FLOPs implements Op. The paper counts raw convolution FLOPs (2 ops per
// multiply-accumulate) without accounting for implementation tricks.
func (o *Conv2dOp) FLOPs(in []Shape, out Shape) int64 {
	macs := out.Elems() * int64(o.InC/o.Groups) * int64(o.KH) * int64(o.KW)
	fl := 2 * macs
	if o.Bias {
		fl += out.Elems()
	}
	return fl
}

// Params implements Op.
func (o *Conv2dOp) Params() int64 {
	p := int64(o.OutC) * int64(o.InC/o.Groups) * int64(o.KH) * int64(o.KW)
	if o.Bias {
		p += int64(o.OutC)
	}
	return p
}

// ---------------------------------------------------------------------------
// Linear

// LinearOp is a fully connected layer over a flattened C×1×1 tensor.
type LinearOp struct {
	In   int  `json:"in"`
	Out  int  `json:"out"`
	Bias bool `json:"bias"`
}

// Kind implements Op.
func (o *LinearOp) Kind() string { return "linear" }

// OutShape implements Op.
func (o *LinearOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].Elems() != int64(o.In) {
		return Shape{}, fmt.Errorf("graph: linear expects %d input features, got shape %v (%d)", o.In, in[0], in[0].Elems())
	}
	return Shape{C: o.Out, H: 1, W: 1}, nil
}

// FLOPs implements Op.
func (o *LinearOp) FLOPs(in []Shape, out Shape) int64 {
	fl := 2 * int64(o.In) * int64(o.Out)
	if o.Bias {
		fl += int64(o.Out)
	}
	return fl
}

// Params implements Op.
func (o *LinearOp) Params() int64 {
	p := int64(o.In) * int64(o.Out)
	if o.Bias {
		p += int64(o.Out)
	}
	return p
}

// ---------------------------------------------------------------------------
// BatchNorm

// BatchNormOp is 2-D batch normalisation; at inference it is an affine
// scale-and-shift per channel.
type BatchNormOp struct {
	C int `json:"c"`
}

// Kind implements Op.
func (o *BatchNormOp) Kind() string { return "batchnorm" }

// OutShape implements Op.
func (o *BatchNormOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].C != o.C {
		return Shape{}, fmt.Errorf("graph: batchnorm expects %d channels, got %d", o.C, in[0].C)
	}
	return in[0], nil
}

// FLOPs implements Op: one multiply and one add per element.
func (o *BatchNormOp) FLOPs(in []Shape, out Shape) int64 { return 2 * out.Elems() }

// Params implements Op: learnable scale and shift per channel.
func (o *BatchNormOp) Params() int64 { return 2 * int64(o.C) }

// ---------------------------------------------------------------------------
// Activations

// ActFunc enumerates supported activation functions.
type ActFunc string

// Supported activation functions.
const (
	ReLU        ActFunc = "relu"
	ReLU6       ActFunc = "relu6"
	SiLU        ActFunc = "silu"
	HardSwish   ActFunc = "hardswish"
	HardSigmoid ActFunc = "hardsigmoid"
	Sigmoid     ActFunc = "sigmoid"
	Tanh        ActFunc = "tanh"
	Softmax     ActFunc = "softmax"
	GELU        ActFunc = "gelu"
)

// actCost is the approximate FLOPs per element for each activation.
var actCost = map[ActFunc]int64{
	ReLU:        1,
	ReLU6:       2,
	SiLU:        5,
	HardSwish:   4,
	HardSigmoid: 3,
	Sigmoid:     4,
	Tanh:        5,
	Softmax:     5,
	GELU:        6,
}

// ActivationOp applies an elementwise nonlinearity.
type ActivationOp struct {
	Fn ActFunc `json:"fn"`
}

// Kind implements Op.
func (o *ActivationOp) Kind() string { return "activation" }

// OutShape implements Op.
func (o *ActivationOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if _, ok := actCost[o.Fn]; !ok {
		return Shape{}, fmt.Errorf("graph: unknown activation %q", o.Fn)
	}
	return in[0], nil
}

// FLOPs implements Op.
func (o *ActivationOp) FLOPs(in []Shape, out Shape) int64 { return actCost[o.Fn] * out.Elems() }

// Params implements Op.
func (o *ActivationOp) Params() int64 { return 0 }

// ---------------------------------------------------------------------------
// Pooling

// PoolKind distinguishes max from average pooling.
type PoolKind string

// Pooling kinds.
const (
	MaxPool PoolKind = "max"
	AvgPool PoolKind = "avg"
)

// Pool2dOp is a fixed-window 2-D pooling layer.
type Pool2dOp struct {
	PoolKind PoolKind `json:"pool"`
	KH       int      `json:"kh"`
	KW       int      `json:"kw"`
	StrideH  int      `json:"stride_h"`
	StrideW  int      `json:"stride_w"`
	PadH     int      `json:"pad_h"`
	PadW     int      `json:"pad_w"`
}

// Kind implements Op.
func (o *Pool2dOp) Kind() string { return "pool2d" }

// OutShape implements Op.
func (o *Pool2dOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.PoolKind != MaxPool && o.PoolKind != AvgPool {
		return Shape{}, fmt.Errorf("graph: unknown pool kind %q", o.PoolKind)
	}
	if o.KH < 1 || o.KW < 1 || o.StrideH < 1 || o.StrideW < 1 || o.PadH < 0 || o.PadW < 0 {
		return Shape{}, fmt.Errorf("graph: pool2d geometry invalid (k %dx%d, stride %dx%d, pad %dx%d)",
			o.KH, o.KW, o.StrideH, o.StrideW, o.PadH, o.PadW)
	}
	h := convOut(in[0].H, o.KH, o.StrideH, o.PadH, 1)
	w := convOut(in[0].W, o.KW, o.StrideW, o.PadW, 1)
	out := Shape{C: in[0].C, H: h, W: w}
	if !out.Valid() {
		return Shape{}, fmt.Errorf("graph: pool2d produces invalid shape %v from input %v", out, in[0])
	}
	return out, nil
}

// FLOPs implements Op: one op per window element per output element.
func (o *Pool2dOp) FLOPs(in []Shape, out Shape) int64 {
	return out.Elems() * int64(o.KH) * int64(o.KW)
}

// Params implements Op.
func (o *Pool2dOp) Params() int64 { return 0 }

// AdaptiveAvgPoolOp pools to a fixed output resolution regardless of the
// input size (PyTorch's AdaptiveAvgPool2d).
type AdaptiveAvgPoolOp struct {
	OutH int `json:"out_h"`
	OutW int `json:"out_w"`
}

// Kind implements Op.
func (o *AdaptiveAvgPoolOp) Kind() string { return "adaptiveavgpool" }

// OutShape implements Op.
func (o *AdaptiveAvgPoolOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.OutH <= 0 || o.OutW <= 0 {
		return Shape{}, fmt.Errorf("graph: adaptive pool target %dx%d invalid", o.OutH, o.OutW)
	}
	// PyTorch's AdaptiveAvgPool2d also permits targets larger than the
	// input (pooling regions then overlap/repeat), which AlexNet and VGG
	// rely on for small images.
	return Shape{C: in[0].C, H: o.OutH, W: o.OutW}, nil
}

// FLOPs implements Op: each input element is read and accumulated at
// least once; for upsampling targets each output element costs one op.
func (o *AdaptiveAvgPoolOp) FLOPs(in []Shape, out Shape) int64 {
	if out.Elems() > in[0].Elems() {
		return out.Elems()
	}
	return in[0].Elems()
}

// Params implements Op.
func (o *AdaptiveAvgPoolOp) Params() int64 { return 0 }

// ---------------------------------------------------------------------------
// Elementwise combination

// AddOp sums two or more equally shaped tensors (residual connections).
type AddOp struct{}

// Kind implements Op.
func (o *AddOp) Kind() string { return "add" }

// OutShape implements Op.
func (o *AddOp) OutShape(in []Shape) (Shape, error) {
	if len(in) < 2 {
		return Shape{}, fmt.Errorf("graph: add expects >=2 inputs, got %d", len(in))
	}
	for _, s := range in[1:] {
		if s != in[0] {
			return Shape{}, fmt.Errorf("graph: add shape mismatch %v vs %v", in[0], s)
		}
	}
	return in[0], nil
}

// FLOPs implements Op.
func (o *AddOp) FLOPs(in []Shape, out Shape) int64 {
	return int64(len(in)-1) * out.Elems()
}

// Params implements Op.
func (o *AddOp) Params() int64 { return 0 }

// MulOp multiplies a full tensor by a per-channel gate (C×1×1), the
// broadcast used by squeeze-and-excitation blocks.
type MulOp struct{}

// Kind implements Op.
func (o *MulOp) Kind() string { return "mul" }

// OutShape implements Op.
func (o *MulOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 2); err != nil {
		return Shape{}, err
	}
	full, gate := in[0], in[1]
	if gate.C != full.C || gate.H != 1 || gate.W != 1 {
		if gate != full {
			return Shape{}, fmt.Errorf("graph: mul gate %v incompatible with %v", gate, full)
		}
	}
	return full, nil
}

// FLOPs implements Op.
func (o *MulOp) FLOPs(in []Shape, out Shape) int64 { return out.Elems() }

// Params implements Op.
func (o *MulOp) Params() int64 { return 0 }

// ConcatOp concatenates tensors along the channel dimension (DenseNet,
// Inception).
type ConcatOp struct{}

// Kind implements Op.
func (o *ConcatOp) Kind() string { return "concat" }

// OutShape implements Op.
func (o *ConcatOp) OutShape(in []Shape) (Shape, error) {
	if len(in) < 2 {
		return Shape{}, fmt.Errorf("graph: concat expects >=2 inputs, got %d", len(in))
	}
	c := 0
	for _, s := range in {
		if s.H != in[0].H || s.W != in[0].W {
			return Shape{}, fmt.Errorf("graph: concat spatial mismatch %v vs %v", in[0], s)
		}
		c += s.C
	}
	return Shape{C: c, H: in[0].H, W: in[0].W}, nil
}

// FLOPs implements Op: a pure memory move, no arithmetic.
func (o *ConcatOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *ConcatOp) Params() int64 { return 0 }

// ---------------------------------------------------------------------------
// Structural

// FlattenOp reshapes a CHW tensor into a vector.
type FlattenOp struct{}

// Kind implements Op.
func (o *FlattenOp) Kind() string { return "flatten" }

// OutShape implements Op.
func (o *FlattenOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	return in[0].Flat(), nil
}

// FLOPs implements Op.
func (o *FlattenOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *FlattenOp) Params() int64 { return 0 }

// DropoutOp is a no-op at inference time, retained so that graph structure
// matches the torchvision reference models.
type DropoutOp struct {
	P float64 `json:"p"`
}

// Kind implements Op.
func (o *DropoutOp) Kind() string { return "dropout" }

// OutShape implements Op.
func (o *DropoutOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.P < 0 || o.P >= 1 {
		return Shape{}, fmt.Errorf("graph: dropout probability %g out of [0,1)", o.P)
	}
	return in[0], nil
}

// FLOPs implements Op.
func (o *DropoutOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *DropoutOp) Params() int64 { return 0 }
