package graph

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON hardens the graph deserialiser: arbitrary JSON must
// either be rejected or produce a graph that passes Validate — never
// panic, never yield an inconsistent graph.
func FuzzGraphJSON(f *testing.F) {
	// Seed with a real serialised model and structural near-misses.
	b, x := NewBuilder("seed", Shape{C: 3, H: 16, W: 16})
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.BatchNorm(x, "bn")
	x = b.ReLU(x, "r")
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "f")
	x = b.Linear(x, "fc", 10)
	g, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{}`)
	f.Add(`{"name":"x","nodes":[]}`)
	f.Add(`{"name":"x","nodes":[{"name":"in","kind":"input","op":{"shape":{"C":-1,"H":1,"W":1}}}]}`)
	f.Add(`{"name":"x","nodes":[{"name":"n","kind":"conv2d","op":{"in_c":1},"inputs":[5]}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := json.Unmarshal([]byte(input), &g); err != nil {
			return // rejection is fine
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		// Accounting must be callable without panics on accepted graphs.
		_ = g.TotalFLOPs()
		_ = g.TotalParams()
		_ = g.ParamLayers()
	})
}
