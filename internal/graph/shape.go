// Package graph models a ConvNet as a directed acyclic graph of tensor
// operations. It provides shape inference, per-op FLOPs / parameter /
// element accounting, a builder API used by the model zoo, and a JSON
// serialisation so external tools can feed graphs to ConvMeter.
//
// All shapes and counts are for a single image (batch size 1); the
// performance model scales them by the batch size analytically, as in the
// paper (§3: "inputs, outputs, and FLOPs scale linearly with the batch
// size").
package graph

import "fmt"

// Shape is a CHW tensor shape for one image. Fully connected tensors are
// represented as C×1×1.
type Shape struct {
	C, H, W int
}

// Elems returns the number of scalar elements in the shape.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Flat returns the shape collapsed to a vector (C·H·W)×1×1, as produced by
// a flatten operation.
func (s Shape) Flat() Shape { return Shape{C: s.C * s.H * s.W, H: 1, W: 1} }

// convOut computes one spatial output dimension of a convolution or
// pooling window: floor((in + 2·pad − dilation·(k−1) − 1)/stride) + 1.
func convOut(in, k, stride, pad, dilation int) int {
	eff := dilation*(k-1) + 1
	return (in+2*pad-eff)/stride + 1
}
