package graph

import "fmt"

// ScaleOp multiplies each channel by a learnable scalar (ConvNeXt's layer
// scale; C parameters).
type ScaleOp struct {
	C int `json:"c"`
}

// Kind implements Op.
func (o *ScaleOp) Kind() string { return "scale" }

// OutShape implements Op.
func (o *ScaleOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if in[0].C != o.C {
		return Shape{}, fmt.Errorf("graph: scale expects %d channels, got %d", o.C, in[0].C)
	}
	return in[0], nil
}

// FLOPs implements Op.
func (o *ScaleOp) FLOPs(in []Shape, out Shape) int64 { return out.Elems() }

// Params implements Op.
func (o *ScaleOp) Params() int64 { return int64(o.C) }

// SliceChannelsOp selects the channel range [From, To) (ShuffleNet's
// channel split).
type SliceChannelsOp struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Kind implements Op.
func (o *SliceChannelsOp) Kind() string { return "slice_channels" }

// OutShape implements Op.
func (o *SliceChannelsOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.From < 0 || o.To <= o.From || o.To > in[0].C {
		return Shape{}, fmt.Errorf("graph: slice [%d,%d) invalid for %d channels", o.From, o.To, in[0].C)
	}
	return Shape{C: o.To - o.From, H: in[0].H, W: in[0].W}, nil
}

// FLOPs implements Op: a pure memory move.
func (o *SliceChannelsOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *SliceChannelsOp) Params() int64 { return 0 }

// ShuffleChannelsOp permutes channels by transposing a (Groups ×
// C/Groups) view — ShuffleNet's channel shuffle. Shape-preserving,
// parameter-free, zero arithmetic.
type ShuffleChannelsOp struct {
	Groups int `json:"groups"`
}

// Kind implements Op.
func (o *ShuffleChannelsOp) Kind() string { return "shuffle_channels" }

// OutShape implements Op.
func (o *ShuffleChannelsOp) OutShape(in []Shape) (Shape, error) {
	if err := needInputs(o.Kind(), in, 1); err != nil {
		return Shape{}, err
	}
	if o.Groups <= 0 || in[0].C%o.Groups != 0 {
		return Shape{}, fmt.Errorf("graph: cannot shuffle %d channels in %d groups", in[0].C, o.Groups)
	}
	return in[0], nil
}

// FLOPs implements Op.
func (o *ShuffleChannelsOp) FLOPs(in []Shape, out Shape) int64 { return 0 }

// Params implements Op.
func (o *ShuffleChannelsOp) Params() int64 { return 0 }
