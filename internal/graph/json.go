package graph

import (
	"encoding/json"
	"fmt"
)

// jsonNode is the wire form of a Node. The op payload is stored with an
// explicit kind tag so unmarshalling can pick the concrete type.
type jsonNode struct {
	Name   string          `json:"name"`
	Kind   string          `json:"kind"`
	Op     json.RawMessage `json:"op,omitempty"`
	Inputs []int           `json:"inputs,omitempty"`
}

type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
}

// MarshalJSON encodes the graph, omitting the inferred shapes (they are
// recomputed on load, which doubles as validation).
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Nodes: make([]jsonNode, len(g.Nodes))}
	for i, n := range g.Nodes {
		raw, err := json.Marshal(n.Op)
		if err != nil {
			return nil, fmt.Errorf("graph: marshal node %d: %w", i, err)
		}
		jg.Nodes[i] = jsonNode{Name: n.Name, Kind: n.Op.Kind(), Op: raw, Inputs: n.Inputs}
	}
	return json.Marshal(jg)
}

// opForKind returns a fresh zero op of the given kind.
func opForKind(kind string) (Op, error) {
	switch kind {
	case "input":
		return &InputOp{}, nil
	case "conv2d":
		return &Conv2dOp{}, nil
	case "linear":
		return &LinearOp{}, nil
	case "batchnorm":
		return &BatchNormOp{}, nil
	case "activation":
		return &ActivationOp{}, nil
	case "pool2d":
		return &Pool2dOp{}, nil
	case "adaptiveavgpool":
		return &AdaptiveAvgPoolOp{}, nil
	case "add":
		return &AddOp{}, nil
	case "mul":
		return &MulOp{}, nil
	case "concat":
		return &ConcatOp{}, nil
	case "flatten":
		return &FlattenOp{}, nil
	case "dropout":
		return &DropoutOp{}, nil
	case "layernorm":
		return &LayerNormOp{}, nil
	case "token_linear":
		return &TokenLinearOp{}, nil
	case "attention":
		return &AttentionCoreOp{}, nil
	case "to_tokens":
		return &ToTokensOp{}, nil
	case "take_token":
		return &TakeTokenOp{}, nil
	case "scale":
		return &ScaleOp{}, nil
	case "slice_channels":
		return &SliceChannelsOp{}, nil
	case "shuffle_channels":
		return &ShuffleChannelsOp{}, nil
	default:
		return nil, fmt.Errorf("graph: unknown op kind %q", kind)
	}
}

// UnmarshalJSON decodes a graph and re-infers all shapes, validating the
// structure in the process.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	nodes := make([]*Node, len(jg.Nodes))
	for i, jn := range jg.Nodes {
		op, err := opForKind(jn.Kind)
		if err != nil {
			return fmt.Errorf("graph: node %d: %w", i, err)
		}
		if len(jn.Op) > 0 {
			if err := json.Unmarshal(jn.Op, op); err != nil {
				return fmt.Errorf("graph: node %d (%s): %w", i, jn.Kind, err)
			}
		}
		shapes := make([]Shape, len(jn.Inputs))
		for j, id := range jn.Inputs {
			if id < 0 || id >= i {
				return fmt.Errorf("graph: node %d references %d, breaking topological order", i, id)
			}
			shapes[j] = nodes[id].Out
		}
		out, err := op.OutShape(shapes)
		if err != nil {
			return fmt.Errorf("graph: node %d (%s): %w", i, jn.Name, err)
		}
		inputs := jn.Inputs
		if inputs == nil {
			inputs = []int{}
		}
		nodes[i] = &Node{ID: i, Name: jn.Name, Op: op, Inputs: inputs, Out: out}
	}
	g.Name = jg.Name
	g.Nodes = nodes
	// Decoding into a reused Graph must drop any shape arena built for
	// the previous node set; it rebuilds lazily on the next query.
	g.inOffs, g.inBuf = nil, nil
	g.shapesBuilt.Store(0)
	return g.Validate()
}
