package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visual
// inspection (`convmeter dot -model resnet50 | dot -Tsvg`). Nodes are
// labelled with their name, op kind and output shape; parameter-carrying
// nodes are drawn as boxes.
func (g *Graph) WriteDOT(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")
	for _, n := range g.Nodes {
		shape := "ellipse"
		if n.Op.Params() > 0 {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n",
			n.ID, fmt.Sprintf("%s\n%s %s", n.Name, n.Op.Kind(), n.Out), shape)
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in, n.ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
