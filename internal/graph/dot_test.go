package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := tinyNet(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	// Every node and every edge must appear.
	for _, n := range g.Nodes {
		if !strings.Contains(out, n.Name) {
			t.Errorf("node %q missing from DOT", n.Name)
		}
	}
	if !strings.Contains(out, "n0 -> n1") {
		t.Error("first edge missing")
	}
	// Parameterised nodes are boxes, others ellipses.
	if !strings.Contains(out, "shape=box") || !strings.Contains(out, "shape=ellipse") {
		t.Error("node shapes not differentiated")
	}
}

func TestWriteDOTRejectsInvalidGraph(t *testing.T) {
	g := tinyNet(t)
	g.Nodes[1].Out.C++ // corrupt
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err == nil {
		t.Fatal("expected validation error")
	}
}
