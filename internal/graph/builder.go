package graph

import (
	"errors"
	"fmt"
)

// Ref identifies a node created by a Builder.
type Ref int

// Builder constructs a Graph incrementally. Errors are latched: after the
// first failure all subsequent calls are no-ops and Build returns the
// error, so model constructors can chain calls without per-call checks.
type Builder struct {
	name  string
	nodes []*Node
	err   error
}

// NewBuilder starts a graph with the given name and input tensor shape and
// returns the builder plus a reference to the input node.
func NewBuilder(name string, input Shape) (*Builder, Ref) {
	b := &Builder{name: name}
	ref := b.add("input", &InputOp{Shape: input}, nil)
	return b, ref
}

// Err returns the first error encountered, if any.
func (b *Builder) Err() error { return b.err }

// Shape returns the inferred output shape of a node (zero Shape after an
// error).
func (b *Builder) Shape(x Ref) Shape {
	if b.err != nil || int(x) < 0 || int(x) >= len(b.nodes) {
		return Shape{}
	}
	return b.nodes[x].Out
}

// Channels returns the channel count of a node's output.
func (b *Builder) Channels(x Ref) int { return b.Shape(x).C }

// add appends a node, inferring its shape; on error it latches.
func (b *Builder) add(name string, op Op, inputs []Ref) Ref {
	if b.err != nil {
		return -1
	}
	ids := make([]int, len(inputs))
	shapes := make([]Shape, len(inputs))
	for i, r := range inputs {
		if int(r) < 0 || int(r) >= len(b.nodes) {
			b.err = fmt.Errorf("graph: %s: invalid input ref %d", name, r)
			return -1
		}
		ids[i] = int(r)
		shapes[i] = b.nodes[r].Out
	}
	out, err := op.OutShape(shapes)
	if err != nil {
		b.err = fmt.Errorf("graph: %s: %w", name, err)
		return -1
	}
	n := &Node{ID: len(b.nodes), Name: name, Op: op, Inputs: ids, Out: out}
	b.nodes = append(b.nodes, n)
	return Ref(n.ID)
}

// ConvSpec collects the full convolution configuration for Conv2d.
type ConvSpec struct {
	Out                  int
	KH, KW               int
	StrideH, StrideW     int
	PadH, PadW           int
	DilationH, DilationW int
	Groups               int
	Bias                 bool
}

// Conv2d adds a convolution described by spec. Zero-valued kernel/stride/
// dilation fields default to 1 and Groups to 1, so callers only set what
// deviates from a 1×1 stride-1 convolution.
func (b *Builder) Conv2d(x Ref, name string, spec ConvSpec) Ref {
	if spec.KH == 0 {
		spec.KH = 1
	}
	if spec.KW == 0 {
		spec.KW = spec.KH
	}
	if spec.StrideH == 0 {
		spec.StrideH = 1
	}
	if spec.StrideW == 0 {
		spec.StrideW = spec.StrideH
	}
	// Mirror the H padding onto W only for square kernels; asymmetric
	// kernels (e.g. Inception's 1×7 / 7×1 factorised convolutions) must
	// state both paddings explicitly.
	if spec.PadW == 0 && spec.KW == spec.KH {
		spec.PadW = spec.PadH
	}
	if spec.DilationH == 0 {
		spec.DilationH = 1
	}
	if spec.DilationW == 0 {
		spec.DilationW = spec.DilationH
	}
	if spec.Groups == 0 {
		spec.Groups = 1
	}
	op := &Conv2dOp{
		InC: b.Channels(x), OutC: spec.Out,
		KH: spec.KH, KW: spec.KW,
		StrideH: spec.StrideH, StrideW: spec.StrideW,
		PadH: spec.PadH, PadW: spec.PadW,
		DilationH: spec.DilationH, DilationW: spec.DilationW,
		Groups: spec.Groups, Bias: spec.Bias,
	}
	return b.add(name, op, []Ref{x})
}

// Conv adds a square convolution with the common (out, kernel, stride,
// padding) signature, no bias, no grouping.
func (b *Builder) Conv(x Ref, name string, out, k, stride, pad int) Ref {
	return b.Conv2d(x, name, ConvSpec{Out: out, KH: k, StrideH: stride, PadH: pad})
}

// ConvBias is Conv with a bias term (used by the pre-batch-norm classics
// such as AlexNet, VGG and SqueezeNet).
func (b *Builder) ConvBias(x Ref, name string, out, k, stride, pad int) Ref {
	return b.Conv2d(x, name, ConvSpec{Out: out, KH: k, StrideH: stride, PadH: pad, Bias: true})
}

// DWConv adds a depthwise convolution (groups == channels).
func (b *Builder) DWConv(x Ref, name string, k, stride, pad int) Ref {
	c := b.Channels(x)
	return b.Conv2d(x, name, ConvSpec{Out: c, KH: k, StrideH: stride, PadH: pad, Groups: c})
}

// BatchNorm adds batch normalisation over the node's channels.
func (b *Builder) BatchNorm(x Ref, name string) Ref {
	return b.add(name, &BatchNormOp{C: b.Channels(x)}, []Ref{x})
}

// Act adds an elementwise activation.
func (b *Builder) Act(x Ref, name string, fn ActFunc) Ref {
	return b.add(name, &ActivationOp{Fn: fn}, []Ref{x})
}

// ReLU adds a ReLU activation.
func (b *Builder) ReLU(x Ref, name string) Ref { return b.Act(x, name, ReLU) }

// MaxPool2d adds max pooling.
func (b *Builder) MaxPool2d(x Ref, name string, k, stride, pad int) Ref {
	return b.add(name, &Pool2dOp{PoolKind: MaxPool, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}, []Ref{x})
}

// AvgPool2d adds average pooling.
func (b *Builder) AvgPool2d(x Ref, name string, k, stride, pad int) Ref {
	return b.add(name, &Pool2dOp{PoolKind: AvgPool, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}, []Ref{x})
}

// AdaptiveAvgPool pools to a fixed out×out resolution.
func (b *Builder) AdaptiveAvgPool(x Ref, name string, outHW int) Ref {
	return b.add(name, &AdaptiveAvgPoolOp{OutH: outHW, OutW: outHW}, []Ref{x})
}

// GlobalAvgPool pools the full spatial extent down to 1×1.
func (b *Builder) GlobalAvgPool(x Ref, name string) Ref {
	return b.AdaptiveAvgPool(x, name, 1)
}

// Add sums residual branches.
func (b *Builder) Add(name string, xs ...Ref) Ref {
	return b.add(name, &AddOp{}, xs)
}

// Mul applies a per-channel gate (squeeze-and-excitation scaling).
func (b *Builder) Mul(name string, full, gate Ref) Ref {
	return b.add(name, &MulOp{}, []Ref{full, gate})
}

// Concat concatenates branches along channels.
func (b *Builder) Concat(name string, xs ...Ref) Ref {
	return b.add(name, &ConcatOp{}, xs)
}

// Flatten reshapes to a vector.
func (b *Builder) Flatten(x Ref, name string) Ref {
	return b.add(name, &FlattenOp{}, []Ref{x})
}

// Dropout adds an inference-time no-op dropout marker.
func (b *Builder) Dropout(x Ref, name string, p float64) Ref {
	return b.add(name, &DropoutOp{P: p}, []Ref{x})
}

// LayerNorm adds layer normalisation over the embedding dimension.
func (b *Builder) LayerNorm(x Ref, name string) Ref {
	return b.add(name, &LayerNormOp{Dim: b.Channels(x)}, []Ref{x})
}

// TokenLinear adds a per-token fully connected layer on a C×T×1 sequence.
func (b *Builder) TokenLinear(x Ref, name string, out int, bias bool) Ref {
	return b.add(name, &TokenLinearOp{In: b.Channels(x), Out: out, Bias: bias}, []Ref{x})
}

// AttentionCore adds scaled-dot-product attention over a fused QKV
// sequence (3·dim channels in, dim channels out).
func (b *Builder) AttentionCore(x Ref, name string, dim, heads int) Ref {
	return b.add(name, &AttentionCoreOp{Dim: dim, Heads: heads}, []Ref{x})
}

// ToTokens converts a patch-embedded feature map into a token sequence
// with class token and position embeddings (the ViT input pipeline).
func (b *Builder) ToTokens(x Ref, name string) Ref {
	s := b.Shape(x)
	return b.add(name, &ToTokensOp{Dim: s.C, Tokens: s.H*s.W + 1}, []Ref{x})
}

// TakeToken selects the class token from a sequence.
func (b *Builder) TakeToken(x Ref, name string) Ref {
	return b.add(name, &TakeTokenOp{}, []Ref{x})
}

// Scale adds a learnable per-channel scale (ConvNeXt layer scale).
func (b *Builder) Scale(x Ref, name string) Ref {
	return b.add(name, &ScaleOp{C: b.Channels(x)}, []Ref{x})
}

// SliceChannels selects the channel range [from, to).
func (b *Builder) SliceChannels(x Ref, name string, from, to int) Ref {
	return b.add(name, &SliceChannelsOp{From: from, To: to}, []Ref{x})
}

// ShuffleChannels permutes channels group-wise (ShuffleNet).
func (b *Builder) ShuffleChannels(x Ref, name string, groups int) Ref {
	return b.add(name, &ShuffleChannelsOp{Groups: groups}, []Ref{x})
}

// Linear adds a fully connected layer with bias.
func (b *Builder) Linear(x Ref, name string, out int) Ref {
	in := b.Shape(x)
	return b.add(name, &LinearOp{In: int(in.Elems()), Out: out, Bias: true}, []Ref{x})
}

// Build finalises and validates the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) < 2 {
		return nil, errors.New("graph: builder produced no operations beyond the input")
	}
	g := &Graph{Name: b.name, Nodes: b.nodes}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for static model definitions where an error is a
// programming bug in the zoo.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
