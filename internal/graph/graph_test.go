package graph

import (
	"encoding/json"
	"testing"
)

// tinyNet builds a minimal conv-bn-relu-pool-fc network used across tests.
func tinyNet(t *testing.T) *Graph {
	t.Helper()
	b, x := NewBuilder("tiny", Shape{C: 3, H: 32, W: 32})
	x = b.Conv(x, "conv1", 8, 3, 1, 1)
	x = b.BatchNorm(x, "bn1")
	x = b.ReLU(x, "relu1")
	x = b.MaxPool2d(x, "pool1", 2, 2, 0)
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flatten")
	x = b.Linear(x, "fc", 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{C: 3, H: 224, W: 224}
	if s.Elems() != 3*224*224 {
		t.Fatalf("Elems = %d", s.Elems())
	}
	if !s.Valid() {
		t.Fatal("valid shape reported invalid")
	}
	if (Shape{C: 0, H: 1, W: 1}).Valid() {
		t.Fatal("invalid shape reported valid")
	}
	if s.Flat() != (Shape{C: 3 * 224 * 224, H: 1, W: 1}) {
		t.Fatalf("Flat = %v", s.Flat())
	}
	if s.String() != "3x224x224" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestConvOutFormula(t *testing.T) {
	// 224 input, 7x7 kernel, stride 2, pad 3 → 112 (ResNet stem).
	if got := convOut(224, 7, 2, 3, 1); got != 112 {
		t.Fatalf("convOut = %d, want 112", got)
	}
	// 56 input, 3x3, stride 1, pad 1 → 56.
	if got := convOut(56, 3, 1, 1, 1); got != 56 {
		t.Fatalf("convOut = %d, want 56", got)
	}
	// Dilation 2: effective kernel 5.
	if got := convOut(32, 3, 1, 2, 2); got != 32 {
		t.Fatalf("dilated convOut = %d, want 32", got)
	}
}

func TestTinyNetShapes(t *testing.T) {
	g := tinyNet(t)
	out, err := g.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 10, H: 1, W: 1}) {
		t.Fatalf("output shape = %v", out)
	}
	in, err := g.InputShape()
	if err != nil {
		t.Fatal(err)
	}
	if in != (Shape{C: 3, H: 32, W: 32}) {
		t.Fatalf("input shape = %v", in)
	}
}

func TestConvFLOPsAndParams(t *testing.T) {
	op := &Conv2dOp{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilationH: 1, DilationW: 1, Groups: 1}
	in := []Shape{{C: 3, H: 32, W: 32}}
	out, err := op.OutShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 8, H: 32, W: 32}) {
		t.Fatalf("out = %v", out)
	}
	wantFLOPs := int64(2 * 8 * 32 * 32 * 3 * 3 * 3)
	if got := op.FLOPs(in, out); got != wantFLOPs {
		t.Fatalf("FLOPs = %d, want %d", got, wantFLOPs)
	}
	if got := op.Params(); got != 8*3*3*3 {
		t.Fatalf("Params = %d, want %d", got, 8*3*3*3)
	}
	op.Bias = true
	if got := op.Params(); got != 8*3*3*3+8 {
		t.Fatalf("Params with bias = %d", got)
	}
}

func TestGroupedConvFLOPs(t *testing.T) {
	// Depthwise: groups == channels → FLOPs shrink by factor C.
	dw := &Conv2dOp{InC: 16, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilationH: 1, DilationW: 1, Groups: 16}
	in := []Shape{{C: 16, H: 8, W: 8}}
	out, err := dw.OutShape(in)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * 16 * 8 * 8 * 1 * 3 * 3)
	if got := dw.FLOPs(in, out); got != want {
		t.Fatalf("depthwise FLOPs = %d, want %d", got, want)
	}
	if got := dw.Params(); got != 16*1*3*3 {
		t.Fatalf("depthwise Params = %d", got)
	}
}

func TestConvErrors(t *testing.T) {
	cases := []struct {
		name string
		op   *Conv2dOp
		in   []Shape
	}{
		{"zero groups", &Conv2dOp{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 0}, []Shape{{C: 3, H: 8, W: 8}}},
		{"indivisible groups", &Conv2dOp{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 2}, []Shape{{C: 3, H: 8, W: 8}}},
		{"channel mismatch", &Conv2dOp{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 1}, []Shape{{C: 3, H: 8, W: 8}}},
		{"kernel too large", &Conv2dOp{InC: 3, OutC: 8, KH: 9, KW: 9, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 1}, []Shape{{C: 3, H: 4, W: 4}}},
		{"wrong arity", &Conv2dOp{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 1}, nil},
	}
	for _, c := range cases {
		if _, err := c.op.OutShape(c.in); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLinearOp(t *testing.T) {
	op := &LinearOp{In: 512, Out: 10, Bias: true}
	out, err := op.OutShape([]Shape{{C: 512, H: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 10, H: 1, W: 1}) {
		t.Fatalf("out = %v", out)
	}
	if got := op.FLOPs(nil, out); got != 2*512*10+10 {
		t.Fatalf("FLOPs = %d", got)
	}
	if got := op.Params(); got != 512*10+10 {
		t.Fatalf("Params = %d", got)
	}
	if _, err := op.OutShape([]Shape{{C: 100, H: 1, W: 1}}); err == nil {
		t.Fatal("expected feature mismatch error")
	}
}

func TestBatchNormOp(t *testing.T) {
	op := &BatchNormOp{C: 64}
	in := Shape{C: 64, H: 10, W: 10}
	out, err := op.OutShape([]Shape{in})
	if err != nil || out != in {
		t.Fatalf("out = %v, err = %v", out, err)
	}
	if op.Params() != 128 {
		t.Fatalf("Params = %d", op.Params())
	}
	if op.FLOPs(nil, out) != 2*in.Elems() {
		t.Fatalf("FLOPs = %d", op.FLOPs(nil, out))
	}
	if _, err := op.OutShape([]Shape{{C: 32, H: 1, W: 1}}); err == nil {
		t.Fatal("expected channel mismatch")
	}
}

func TestActivationOps(t *testing.T) {
	in := Shape{C: 4, H: 2, W: 2}
	for _, fn := range []ActFunc{ReLU, ReLU6, SiLU, HardSwish, HardSigmoid, Sigmoid, Tanh, Softmax, GELU} {
		op := &ActivationOp{Fn: fn}
		out, err := op.OutShape([]Shape{in})
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if out != in {
			t.Fatalf("%s: shape changed", fn)
		}
		if op.FLOPs(nil, out) <= 0 {
			t.Fatalf("%s: non-positive FLOPs", fn)
		}
		if op.Params() != 0 {
			t.Fatalf("%s: activations have no params", fn)
		}
	}
	if _, err := (&ActivationOp{Fn: "bogus"}).OutShape([]Shape{in}); err == nil {
		t.Fatal("expected unknown-activation error")
	}
}

func TestPoolingOps(t *testing.T) {
	in := Shape{C: 8, H: 16, W: 16}
	mp := &Pool2dOp{PoolKind: MaxPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	out, err := mp.OutShape([]Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 8, H: 8, W: 8}) {
		t.Fatalf("maxpool out = %v", out)
	}
	if mp.FLOPs(nil, out) != out.Elems()*4 {
		t.Fatalf("maxpool FLOPs = %d", mp.FLOPs(nil, out))
	}
	ap := &AdaptiveAvgPoolOp{OutH: 1, OutW: 1}
	out, err = ap.OutShape([]Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 8, H: 1, W: 1}) {
		t.Fatalf("adaptive out = %v", out)
	}
	if _, err := ap.OutShape([]Shape{{C: 8, H: 1, W: 1}}); err != nil {
		t.Fatalf("1x1→1x1 adaptive pool should be legal: %v", err)
	}
	// PyTorch semantics: upsampling targets are legal.
	up := &AdaptiveAvgPoolOp{OutH: 7, OutW: 7}
	if out, err := up.OutShape([]Shape{{C: 8, H: 3, W: 3}}); err != nil || out != (Shape{C: 8, H: 7, W: 7}) {
		t.Fatalf("upsampling adaptive pool: %v %v", out, err)
	}
	if up.FLOPs([]Shape{{C: 8, H: 3, W: 3}}, Shape{C: 8, H: 7, W: 7}) != 8*7*7 {
		t.Fatal("upsampling adaptive pool FLOPs should track output")
	}
	if _, err := (&AdaptiveAvgPoolOp{OutH: 0, OutW: 1}).OutShape([]Shape{{C: 8, H: 3, W: 3}}); err == nil {
		t.Fatal("expected invalid-target rejection")
	}
	if _, err := (&Pool2dOp{PoolKind: "bogus", KH: 2, KW: 2, StrideH: 2, StrideW: 2}).OutShape([]Shape{in}); err == nil {
		t.Fatal("expected unknown pool kind error")
	}
}

func TestAddMulConcat(t *testing.T) {
	a := Shape{C: 8, H: 4, W: 4}
	bShape := Shape{C: 8, H: 4, W: 4}
	add := &AddOp{}
	out, err := add.OutShape([]Shape{a, bShape})
	if err != nil || out != a {
		t.Fatalf("add: %v %v", out, err)
	}
	if _, err := add.OutShape([]Shape{a}); err == nil {
		t.Fatal("add needs >= 2 inputs")
	}
	if _, err := add.OutShape([]Shape{a, {C: 4, H: 4, W: 4}}); err == nil {
		t.Fatal("add shape mismatch must error")
	}

	mul := &MulOp{}
	gate := Shape{C: 8, H: 1, W: 1}
	if out, err := mul.OutShape([]Shape{a, gate}); err != nil || out != a {
		t.Fatalf("mul gate: %v %v", out, err)
	}
	if out, err := mul.OutShape([]Shape{a, a}); err != nil || out != a {
		t.Fatalf("mul same-shape: %v %v", out, err)
	}
	if _, err := mul.OutShape([]Shape{a, {C: 4, H: 1, W: 1}}); err == nil {
		t.Fatal("mul incompatible gate must error")
	}

	cc := &ConcatOp{}
	out, err = cc.OutShape([]Shape{a, {C: 16, H: 4, W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 24, H: 4, W: 4}) {
		t.Fatalf("concat out = %v", out)
	}
	if _, err := cc.OutShape([]Shape{a, {C: 16, H: 2, W: 2}}); err == nil {
		t.Fatal("concat spatial mismatch must error")
	}
}

func TestDropoutValidation(t *testing.T) {
	in := Shape{C: 4, H: 1, W: 1}
	if _, err := (&DropoutOp{P: 0.5}).OutShape([]Shape{in}); err != nil {
		t.Fatal(err)
	}
	if _, err := (&DropoutOp{P: 1.5}).OutShape([]Shape{in}); err == nil {
		t.Fatal("expected out-of-range dropout error")
	}
}

func TestGraphAccounting(t *testing.T) {
	g := tinyNet(t)
	// conv: 8*3*3*3 = 216; bn: 16; fc: 8*10+10 = 90.
	if got := g.TotalParams(); got != 216+16+90 {
		t.Fatalf("TotalParams = %d, want %d", got, 216+16+90)
	}
	if g.ParamLayers() != 3 {
		t.Fatalf("ParamLayers = %d, want 3", g.ParamLayers())
	}
	if g.TotalFLOPs() <= 0 {
		t.Fatal("TotalFLOPs must be positive")
	}
	if g.CountKind("conv2d") != 1 || g.CountKind("linear") != 1 {
		t.Fatal("CountKind miscounts")
	}
}

func TestBuilderErrorLatching(t *testing.T) {
	b, x := NewBuilder("bad", Shape{C: 3, H: 8, W: 8})
	x = b.Conv(x, "conv-too-big", 8, 11, 1, 0) // kernel larger than input
	x = b.ReLU(x, "relu")                      // should be a no-op after error
	if _, err := b.Build(); err == nil {
		t.Fatal("expected builder error to surface in Build")
	}
	if b.Err() == nil {
		t.Fatal("Err() should report the latched error")
	}
	if b.Shape(x) != (Shape{}) {
		t.Fatal("Shape after error should be zero")
	}
}

func TestBuilderEmptyGraph(t *testing.T) {
	b, _ := NewBuilder("empty", Shape{C: 1, H: 1, W: 1})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for op-less graph")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := tinyNet(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a stored shape.
	g.Nodes[1].Out.C++
	if err := g.Validate(); err == nil {
		t.Fatal("expected shape corruption to be caught")
	}
	g.Nodes[1].Out.C--
	// Break topological order.
	g.Nodes[1].Inputs[0] = 5
	if err := g.Validate(); err == nil {
		t.Fatal("expected topological violation to be caught")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := tinyNet(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || len(back.Nodes) != len(g.Nodes) {
		t.Fatalf("round trip lost structure: %s %d", back.Name, len(back.Nodes))
	}
	if back.TotalParams() != g.TotalParams() || back.TotalFLOPs() != g.TotalFLOPs() {
		t.Fatal("round trip changed accounting")
	}
	for i := range g.Nodes {
		if back.Nodes[i].Out != g.Nodes[i].Out {
			t.Fatalf("node %d shape changed: %v vs %v", i, back.Nodes[i].Out, g.Nodes[i].Out)
		}
	}
}

func TestJSONRejectsUnknownKind(t *testing.T) {
	payload := `{"name":"x","nodes":[{"name":"in","kind":"warp-drive"}]}`
	var g Graph
	if err := json.Unmarshal([]byte(payload), &g); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestJSONRejectsForwardReference(t *testing.T) {
	payload := `{"name":"x","nodes":[
	  {"name":"in","kind":"input","op":{"shape":{"C":3,"H":8,"W":8}}},
	  {"name":"relu","kind":"activation","op":{"fn":"relu"},"inputs":[2]}
	]}`
	var g Graph
	if err := json.Unmarshal([]byte(payload), &g); err == nil {
		t.Fatal("expected forward-reference error")
	}
}

func TestBranchingGraph(t *testing.T) {
	// Residual block with SE gate exercise: add + mul + concat combined.
	b, x := NewBuilder("branchy", Shape{C: 16, H: 8, W: 8})
	left := b.Conv(x, "left", 16, 3, 1, 1)
	right := b.Conv(x, "right", 16, 1, 1, 0)
	sum := b.Add("sum", left, right)
	gate := b.GlobalAvgPool(sum, "squeeze")
	gate = b.Conv(gate, "fc1", 4, 1, 1, 0)
	gate = b.ReLU(gate, "fc1act")
	gate = b.Conv(gate, "fc2", 16, 1, 1, 0)
	gate = b.Act(gate, "fc2act", Sigmoid)
	scaled := b.Mul("scale", sum, gate)
	cat := b.Concat("cat", scaled, x)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := g.OutputShape()
	if out != (Shape{C: 32, H: 8, W: 8}) {
		t.Fatalf("output = %v", out)
	}
	_ = cat
}

func TestNodeInputElems(t *testing.T) {
	g := tinyNet(t)
	// Node 1 is conv1 consuming the 3x32x32 input.
	if got := g.NodeInputElems(1); got != 3*32*32 {
		t.Fatalf("NodeInputElems = %d", got)
	}
}
