package graph

import (
	"encoding/json"
	"testing"
)

func TestScaleOp(t *testing.T) {
	op := &ScaleOp{C: 8}
	in := Shape{C: 8, H: 4, W: 4}
	out, err := op.OutShape([]Shape{in})
	if err != nil || out != in {
		t.Fatalf("out = %v, err = %v", out, err)
	}
	if op.Params() != 8 {
		t.Fatalf("Params = %d, want 8", op.Params())
	}
	if op.FLOPs(nil, out) != in.Elems() {
		t.Fatalf("FLOPs = %d", op.FLOPs(nil, out))
	}
	if _, err := op.OutShape([]Shape{{C: 4, H: 1, W: 1}}); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestSliceChannelsOp(t *testing.T) {
	op := &SliceChannelsOp{From: 2, To: 6}
	in := Shape{C: 8, H: 3, W: 3}
	out, err := op.OutShape([]Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 4, H: 3, W: 3}) {
		t.Fatalf("out = %v", out)
	}
	if op.Params() != 0 || op.FLOPs(nil, out) != 0 {
		t.Fatal("slice must be free")
	}
	bad := []*SliceChannelsOp{
		{From: -1, To: 2}, {From: 4, To: 4}, {From: 2, To: 9},
	}
	for _, b := range bad {
		if _, err := b.OutShape([]Shape{in}); err == nil {
			t.Fatalf("slice [%d,%d) should be rejected", b.From, b.To)
		}
	}
}

func TestShuffleChannelsOp(t *testing.T) {
	op := &ShuffleChannelsOp{Groups: 2}
	in := Shape{C: 8, H: 2, W: 2}
	out, err := op.OutShape([]Shape{in})
	if err != nil || out != in {
		t.Fatalf("out = %v, err = %v", out, err)
	}
	if op.Params() != 0 || op.FLOPs(nil, out) != 0 {
		t.Fatal("shuffle must be free")
	}
	if _, err := (&ShuffleChannelsOp{Groups: 3}).OutShape([]Shape{in}); err == nil {
		t.Fatal("indivisible groups must be rejected")
	}
	if _, err := (&ShuffleChannelsOp{Groups: 0}).OutShape([]Shape{in}); err == nil {
		t.Fatal("zero groups must be rejected")
	}
}

func TestMiscOpsJSONRoundTrip(t *testing.T) {
	b, x := NewBuilder("misc", Shape{C: 8, H: 4, W: 4})
	x = b.Scale(x, "scale")
	x = b.ShuffleChannels(x, "shuffle", 2)
	x = b.SliceChannels(x, "slice", 0, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalParams() != g.TotalParams() || len(back.Nodes) != len(g.Nodes) {
		t.Fatal("round trip lost structure")
	}
}

func TestTransformerOpsJSONRoundTrip(t *testing.T) {
	b, x := NewBuilder("tf", Shape{C: 16, H: 4, W: 4})
	x = b.ToTokens(x, "tokens")
	x = b.LayerNorm(x, "ln")
	x = b.TokenLinear(x, "qkv", 48, true)
	x = b.AttentionCore(x, "attn", 16, 4)
	x = b.TakeToken(x, "cls")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalParams() != g.TotalParams() || back.TotalFLOPs() != g.TotalFLOPs() {
		t.Fatal("round trip changed accounting")
	}
	out, _ := back.OutputShape()
	if out != (Shape{C: 16, H: 1, W: 1}) {
		t.Fatalf("output = %v", out)
	}
}

func TestTransformerOpErrors(t *testing.T) {
	seq := Shape{C: 16, H: 5, W: 1}
	if _, err := (&LayerNormOp{Dim: 8}).OutShape([]Shape{seq}); err == nil {
		t.Fatal("layernorm dim mismatch must error")
	}
	if _, err := (&TokenLinearOp{In: 8, Out: 4}).OutShape([]Shape{seq}); err == nil {
		t.Fatal("token linear dim mismatch must error")
	}
	if _, err := (&TokenLinearOp{In: 16, Out: 4}).OutShape([]Shape{{C: 16, H: 5, W: 2}}); err == nil {
		t.Fatal("token linear on non-sequence must error")
	}
	if _, err := (&AttentionCoreOp{Dim: 16, Heads: 3}).OutShape([]Shape{{C: 48, H: 5, W: 1}}); err == nil {
		t.Fatal("indivisible heads must error")
	}
	if _, err := (&AttentionCoreOp{Dim: 16, Heads: 4}).OutShape([]Shape{{C: 32, H: 5, W: 1}}); err == nil {
		t.Fatal("non-QKV input must error")
	}
	if _, err := (&ToTokensOp{Dim: 16, Tokens: 5}).OutShape([]Shape{{C: 16, H: 2, W: 3}}); err == nil {
		t.Fatal("token-count mismatch must error")
	}
	if _, err := (&ToTokensOp{Dim: 8, Tokens: 7}).OutShape([]Shape{{C: 16, H: 2, W: 3}}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}
