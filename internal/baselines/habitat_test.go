package baselines

import (
	"testing"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/regress"
)

// collectFor runs a reduced inference sweep on the given device.
func collectFor(t *testing.T, dev hwsim.Device, seed int64) []core.Sample {
	t.Helper()
	sc := bench.DefaultInferenceScenario(dev, seed)
	sc.Models = []string{"resnet18", "resnet50", "mobilenet_v2", "vgg11", "alexnet", "densenet121"}
	sc.Images = []int{64, 128}
	sc.Batches = []int{1, 8, 64}
	samples, err := bench.CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestTransferInferenceAcrossDevices(t *testing.T) {
	// Fit on the A100, transfer to the Jetson-class edge device, and
	// compare against Jetson ground truth.
	srcSamples := collectFor(t, hwsim.A100(), 1)
	srcModel, err := core.FitInference(srcSamples)
	if err != nil {
		t.Fatal(err)
	}
	transferred, err := TransferInference(srcModel, hwsim.A100(), hwsim.JetsonLike())
	if err != nil {
		t.Fatal(err)
	}
	dstSamples := collectFor(t, hwsim.JetsonLike(), 2)
	acts := make([]float64, len(dstSamples))
	preds := make([]float64, len(dstSamples))
	for i, s := range dstSamples {
		acts[i] = float64(s.Fwd)
		preds[i] = float64(transferred.Predict(s.Met, float64(s.BatchPerDevice)))
	}
	rep, err := regress.Evaluate(acts, preds)
	if err != nil {
		t.Fatal(err)
	}
	// The transfer must be usable (right order of magnitude, decent
	// correlation) …
	if rep.R2 < 0.5 {
		t.Fatalf("transferred model R² = %.3f — transfer broken", rep.R2)
	}
	if rep.MAPE > 1.5 {
		t.Fatalf("transferred model MAPE = %.3f — transfer broken", rep.MAPE)
	}
	// … but a native fit on the target must beat it, which is ConvMeter's
	// argument for cheap target-side benchmarking (paper Table 4 context).
	native, err := core.FitInference(dstSamples)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range dstSamples {
		preds[i] = float64(native.Predict(s.Met, float64(s.BatchPerDevice)))
	}
	nativeRep, err := regress.Evaluate(acts, preds)
	if err != nil {
		t.Fatal(err)
	}
	if nativeRep.MAPE >= rep.MAPE {
		t.Fatalf("native fit MAPE %.3f should beat transferred %.3f", nativeRep.MAPE, rep.MAPE)
	}
}

func TestTransferInferenceIdentity(t *testing.T) {
	// Transferring to the same device must reproduce the original model.
	samples := collectFor(t, hwsim.A100(), 3)
	m, err := core.FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	same, err := TransferInference(m, hwsim.A100(), hwsim.A100())
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Coefficients()
	got := same.Coefficients()
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("identity transfer changed coefficient %d", i)
		}
	}
}

func TestTransferInferenceErrors(t *testing.T) {
	if _, err := TransferInference(nil, hwsim.A100(), hwsim.XeonCore()); err == nil {
		t.Fatal("expected nil-model error")
	}
	samples := collectFor(t, hwsim.A100(), 4)
	m, err := core.FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TransferInference(m, hwsim.Device{}, hwsim.A100()); err == nil {
		t.Fatal("expected invalid-device error")
	}
}
