package baselines

import (
	"fmt"

	"convmeter/internal/graph"
)

// Paleo is an analytical runtime model in the spirit of Qi et al. (ICLR
// '17): each layer's time is estimated by dividing its workload by the
// device's nominal capability — FLOPs over peak throughput plus tensor
// traffic over memory bandwidth, *added* rather than overlapped, with no
// fitted coefficients. The paper's related-work critique is that such
// FLOPs-dominated accounting misses the complex structure of modern
// ConvNets; this implementation exists to quantify that gap.
type Paleo struct {
	// PeakFLOPS is the device's advertised peak throughput (FLOP/s).
	PeakFLOPS float64
	// MemBW is the advertised memory bandwidth (bytes/s).
	MemBW float64
	// BytesPerElem is the tensor element width (4 for fp32).
	BytesPerElem float64
}

// NewPaleo builds a Paleo model from nominal device numbers.
func NewPaleo(peakFLOPS, memBW float64) (*Paleo, error) {
	if peakFLOPS <= 0 || memBW <= 0 {
		return nil, fmt.Errorf("baselines: paleo needs positive peak (%g) and bandwidth (%g)", peakFLOPS, memBW)
	}
	return &Paleo{PeakFLOPS: peakFLOPS, MemBW: memBW, BytesPerElem: 4}, nil
}

// PredictForward estimates the forward-pass time of the graph at the
// given batch size.
func (p *Paleo) PredictForward(g *graph.Graph, batch int) (float64, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("baselines: paleo batch %d", batch)
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	b := float64(batch)
	total := 0.0
	for i, n := range g.Nodes {
		flops := float64(g.NodeFLOPs(i)) * b
		bytes := (float64(g.NodeInputElems(i))*b + float64(n.Out.Elems())*b + float64(n.Op.Params())) * p.BytesPerElem
		total += flops/p.PeakFLOPS + bytes/p.MemBW
	}
	return total, nil
}
