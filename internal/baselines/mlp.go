package baselines

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a small fully connected network with ReLU hidden layers and a
// linear output, trained by mini-batch SGD with momentum on mean squared
// error. It is the learned core of the DIPPM surrogate — implemented from
// scratch because the real DIPPM (a graph neural network trained for 500
// epochs on an A100 dataset) is not available; see DESIGN.md.
type MLP struct {
	sizes   []int
	weights [][]float64 // [layer][out*in]
	biases  [][]float64 // [layer][out]
	rng     *rand.Rand
}

// NewMLP creates a network with the given layer sizes (inputs first,
// single output last), He-initialised from the seed.
func NewMLP(sizes []int, seed int64) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("baselines: MLP needs >=2 layer sizes, got %d", len(sizes))
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("baselines: non-positive layer size in %v", sizes)
		}
	}
	if sizes[len(sizes)-1] != 1 {
		return nil, fmt.Errorf("baselines: MLP output layer must have size 1, got %d", sizes[len(sizes)-1])
	}
	m := &MLP{sizes: sizes, rng: rand.New(rand.NewSource(seed))}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		std := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = m.rng.NormFloat64() * std
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
	}
	return m, nil
}

// forward runs the network, returning pre-activations and activations per
// layer for use in backprop. acts[0] is the input.
func (m *MLP) forward(x []float64) (acts [][]float64) {
	acts = [][]float64{x}
	cur := x
	for l := 0; l < len(m.weights); l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		next := make([]float64, out)
		for o := 0; o < out; o++ {
			s := m.biases[l][o]
			row := m.weights[l][o*in : (o+1)*in]
			for i, v := range cur {
				s += row[i] * v
			}
			if l < len(m.weights)-1 && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			next[o] = s
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

// Predict evaluates the network on one feature vector.
func (m *MLP) Predict(x []float64) (float64, error) {
	if len(x) != m.sizes[0] {
		return 0, fmt.Errorf("baselines: input has %d features, MLP expects %d", len(x), m.sizes[0])
	}
	acts := m.forward(x)
	return acts[len(acts)-1][0], nil
}

// TrainConfig controls SGD.
type TrainConfig struct {
	Epochs    int
	LR        float64
	Momentum  float64
	BatchSize int
}

// Train fits the network on (X, y) with mini-batch SGD. It returns the
// final epoch's mean squared error.
func (m *MLP) Train(X [][]float64, y []float64, cfg TrainConfig) (float64, error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, fmt.Errorf("baselines: bad training set (%d inputs, %d targets)", len(X), len(y))
	}
	for i, x := range X {
		if len(x) != m.sizes[0] {
			return 0, fmt.Errorf("baselines: training row %d has %d features, want %d", i, len(x), m.sizes[0])
		}
	}
	if cfg.Epochs <= 0 || cfg.LR <= 0 || cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("baselines: invalid train config %+v", cfg)
	}
	// Momentum buffers.
	vw := make([][]float64, len(m.weights))
	vb := make([][]float64, len(m.biases))
	for l := range m.weights {
		vw[l] = make([]float64, len(m.weights[l]))
		vb[l] = make([]float64, len(m.biases[l]))
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	lastMSE := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		sse := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			// Accumulate gradients over the mini-batch.
			gw := make([][]float64, len(m.weights))
			gb := make([][]float64, len(m.biases))
			for l := range m.weights {
				gw[l] = make([]float64, len(m.weights[l]))
				gb[l] = make([]float64, len(m.biases[l]))
			}
			for _, s := range batch {
				acts := m.forward(X[s])
				pred := acts[len(acts)-1][0]
				err := pred - y[s]
				sse += err * err
				// Backprop: delta at output is d(MSE)/d(pred).
				delta := []float64{2 * err}
				for l := len(m.weights) - 1; l >= 0; l-- {
					in := m.sizes[l]
					prev := acts[l]
					for o, d := range delta {
						gb[l][o] += d
						row := gw[l][o*in : (o+1)*in]
						for i, p := range prev {
							row[i] += d * p
						}
					}
					if l == 0 {
						break
					}
					nd := make([]float64, in)
					for i := 0; i < in; i++ {
						s := 0.0
						for o, d := range delta {
							s += m.weights[l][o*in+i] * d
						}
						if acts[l][i] <= 0 { // ReLU derivative
							s = 0
						}
						nd[i] = s
					}
					delta = nd
				}
			}
			scale := cfg.LR / float64(len(batch))
			for l := range m.weights {
				for i := range m.weights[l] {
					vw[l][i] = cfg.Momentum*vw[l][i] - scale*gw[l][i]
					m.weights[l][i] += vw[l][i]
				}
				for i := range m.biases[l] {
					vb[l][i] = cfg.Momentum*vb[l][i] - scale*gb[l][i]
					m.biases[l][i] += vb[l][i]
				}
			}
		}
		lastMSE = sse / float64(len(X))
	}
	return lastMSE, nil
}
