package baselines

import (
	"math"
	"math/rand"
	"testing"

	"convmeter/internal/core"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
)

// synthSamples builds inference samples whose true runtime depends on all
// three metrics, so restricted models must underperform the full one.
func synthSamples(nModels int, batches []int, noise float64, seed int64) []core.Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []core.Sample
	for i := 0; i < nModels; i++ {
		f := float64(i + 1)
		met := metrics.Metrics{
			Model:   string(rune('a' + i)),
			FLOPs:   metrics.FLOPs(1e9 * f * f),
			Inputs:  metrics.Count(2e6 * f),
			Outputs: metrics.Count(3e6 * math.Sqrt(f)),
			Weights: metrics.Count(5e6 * f),
			Layers:  metrics.Count(20 + 3*f),
		}
		for _, b := range batches {
			bf := float64(b)
			fwd := 1e-12*float64(met.FLOPs)*bf + 5e-10*float64(met.Inputs)*bf + 8e-10*float64(met.Outputs)*bf + 0.0005
			fwd *= 1 + noise*rng.NormFloat64()
			out = append(out, core.Sample{
				Model: met.Model, Met: met, Image: 128,
				BatchPerDevice: b, Devices: 1, Nodes: 1, Fwd: metrics.Seconds(fwd),
			})
		}
	}
	return out
}

func TestMaskString(t *testing.T) {
	cases := map[string]MetricMask{
		"FLOPs":                {F: true},
		"Inputs":               {I: true},
		"Outputs":              {O: true},
		"FLOPs+Inputs+Outputs": {F: true, I: true, O: true},
		"intercept-only":       {},
	}
	for want, mask := range cases {
		if got := mask.String(); got != want {
			t.Errorf("mask.String() = %q, want %q", got, want)
		}
	}
}

func TestFitAblationErrors(t *testing.T) {
	if _, err := FitAblation(nil, MetricMask{F: true}); err == nil {
		t.Fatal("expected error on empty samples")
	}
	s := synthSamples(3, []int{1, 2}, 0, 1)
	if _, err := FitAblation(s, MetricMask{}); err == nil {
		t.Fatal("expected error on empty mask")
	}
}

func TestCombinedMaskBeatsSingleMetrics(t *testing.T) {
	// The paper's Figure 2 claim, as a property of the protocol: with a
	// ground truth that genuinely mixes all three metrics, the combined
	// LOMO error must be lower than every single-metric error.
	samples := synthSamples(8, []int{1, 4, 16, 64, 256}, 0.02, 5)
	combined, err := EvaluateAblationLOMO(samples, MetricMask{F: true, I: true, O: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mask := range []MetricMask{{F: true}, {I: true}, {O: true}} {
		single, err := EvaluateAblationLOMO(samples, mask)
		if err != nil {
			t.Fatal(err)
		}
		if single.Overall.MAPE <= combined.Overall.MAPE {
			t.Errorf("%s MAPE %.4f should exceed combined %.4f",
				mask, single.Overall.MAPE, combined.Overall.MAPE)
		}
	}
}

func TestAllMasksCount(t *testing.T) {
	masks := AllMasks()
	if len(masks) != 7 {
		t.Fatalf("AllMasks returned %d masks, want 7", len(masks))
	}
	seen := map[string]bool{}
	for _, m := range masks {
		if seen[m.String()] {
			t.Fatalf("duplicate mask %s", m)
		}
		seen[m.String()] = true
	}
}

func TestPaleoPredictForward(t *testing.T) {
	g, err := models.Build("resnet18", 128)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPaleo(19.5e12, 2.0e12)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.PredictForward(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	t64, err := p.PredictForward(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= 0 || t64 <= t1 {
		t.Fatalf("paleo times implausible: %g, %g", t1, t64)
	}
	if _, err := p.PredictForward(g, 0); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := NewPaleo(0, 1); err == nil {
		t.Fatal("expected invalid-device error")
	}
}

func TestMLPConstruction(t *testing.T) {
	if _, err := NewMLP([]int{3}, 1); err == nil {
		t.Fatal("expected error for single layer")
	}
	if _, err := NewMLP([]int{3, 0, 1}, 1); err == nil {
		t.Fatal("expected error for zero-width layer")
	}
	if _, err := NewMLP([]int{3, 4, 2}, 1); err == nil {
		t.Fatal("expected error for multi-output network")
	}
	m, err := NewMLP([]int{3, 8, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("expected feature-width error")
	}
}

func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		X = append(X, []float64{a, b})
		y = append(y, 0.5*a-0.3*b+0.1)
	}
	m, err := NewMLP([]int{2, 16, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := m.Train(X, y, TrainConfig{Epochs: 200, LR: 0.05, Momentum: 0.9, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-3 {
		t.Fatalf("MLP failed to learn linear target, MSE %g", mse)
	}
	pred, err := m.Predict([]float64{0.4, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*0.4 - 0.3*-0.2 + 0.1
	if math.Abs(pred-want) > 0.05 {
		t.Fatalf("MLP prediction %g, want ≈%g", pred, want)
	}
}

func TestMLPLearnsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var X [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a := rng.Float64()*2 - 1
		X = append(X, []float64{a})
		y = append(y, a*a) // needs a hidden layer
	}
	m, err := NewMLP([]int{1, 24, 24, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := m.Train(X, y, TrainConfig{Epochs: 400, LR: 0.03, Momentum: 0.9, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 5e-3 {
		t.Fatalf("MLP failed to learn x², MSE %g", mse)
	}
}

func TestMLPTrainValidation(t *testing.T) {
	m, _ := NewMLP([]int{2, 4, 1}, 1)
	if _, err := m.Train(nil, nil, TrainConfig{Epochs: 1, LR: 0.1, BatchSize: 1}); err == nil {
		t.Fatal("expected empty-set error")
	}
	X := [][]float64{{1, 2}}
	if _, err := m.Train(X, []float64{1}, TrainConfig{}); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := m.Train([][]float64{{1}}, []float64{1}, TrainConfig{Epochs: 1, LR: 0.1, BatchSize: 1}); err == nil {
		t.Fatal("expected feature-width error")
	}
}

func TestDIPPMTrainAndPredict(t *testing.T) {
	samples := synthSamples(8, []int{1, 4, 16, 64}, 0.02, 11)
	d, err := TrainDIPPM(samples, DIPPMConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// In-distribution accuracy should be decent (within ~40% on average).
	sumErr, n := 0.0, 0
	for _, s := range samples {
		pred, err := d.Predict(s.Met, float64(s.BatchPerDevice))
		if err != nil {
			t.Fatal(err)
		}
		if pred <= 0 {
			t.Fatalf("non-positive prediction %g", pred)
		}
		sumErr += math.Abs(pred-float64(s.Fwd)) / float64(s.Fwd)
		n++
	}
	if mape := sumErr / float64(n); mape > 0.4 {
		t.Fatalf("in-distribution DIPPM MAPE %g too high", mape)
	}
}

func TestDIPPMErrors(t *testing.T) {
	if _, err := TrainDIPPM(nil, DIPPMConfig{}); err == nil {
		t.Fatal("expected small-dataset error")
	}
	var d DIPPM
	if _, err := d.Predict(metrics.Metrics{FLOPs: 1, Outputs: 1, Weights: 1, Layers: 1}, 1); err == nil {
		t.Fatal("expected untrained error")
	}
	bad := synthSamples(4, []int{1, 2, 4}, 0, 1)
	bad[0].Fwd = 0
	if _, err := TrainDIPPM(bad, DIPPMConfig{}); err == nil {
		t.Fatal("expected non-positive-time error")
	}
}

func TestDIPPMCannotParseSqueezeNet(t *testing.T) {
	// Mirrors the paper: "DIPPM was unable to parse the model graph of
	// squeezenet1_0".
	sq, err := models.Build("squeezenet1_0", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := CanParse(sq); err == nil {
		t.Fatal("squeezenet1_0 must be rejected by the DIPPM featuriser")
	}
	rn, err := models.Build("resnet18", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := CanParse(rn); err != nil {
		t.Fatalf("resnet18 should parse: %v", err)
	}
}
