package baselines

import (
	"errors"
	"fmt"
	"math"

	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/metrics"
)

// DIPPM is a learned inference-latency predictor standing in for the
// GNN-based DIPPM of Panner Selvam & Brorsson (Euro-Par '23), the paper's
// state-of-the-art comparison point (Figure 6).
//
// Substitution notes (DESIGN.md): the real DIPPM is trained for 500
// epochs on a large A100 kernel dataset and is not available. This
// surrogate keeps the *relevant* properties for the comparison — a
// learned (non-analytical) model over graph-derived features that (a)
// does not use ConvMeter's Inputs metric and (b) is trained on a narrower
// configuration distribution, which is exactly why it loses accuracy on
// out-of-distribution models in Figure 6. It also inherits the published
// DIPPM limitation of failing to parse graphs without a terminal linear
// classifier (the paper notes it could not parse squeezenet1_0).
type DIPPM struct {
	net     *MLP
	mean    []float64
	std     []float64
	yMean   float64
	yStd    float64
	trained bool
}

// dippmFeatures derives the surrogate's feature vector. Unlike ConvMeter
// it sees FLOPs, outputs, weights, depth and batch — but not Inputs.
func dippmFeatures(met metrics.Metrics, b float64) []float64 {
	s := met.Scale(b)
	return []float64{
		math.Log(float64(s.FLOPs)),
		math.Log(float64(s.Outputs)),
		math.Log(float64(met.Weights)),
		float64(met.Layers) / 100,
		math.Log(b),
	}
}

// CanParse reports whether the surrogate's graph featuriser handles the
// model: it requires a terminal fully connected classifier, so the
// SqueezeNet family (convolutional classifier head) is rejected — the
// same failure the paper reports for the original DIPPM on squeezenet1_0.
func CanParse(g *graph.Graph) error {
	if g.CountKind("linear") == 0 {
		return fmt.Errorf("baselines: dippm cannot parse %s: no fully connected classifier in the graph", g.Name)
	}
	return nil
}

// DIPPMConfig controls surrogate training.
type DIPPMConfig struct {
	Hidden []int // hidden layer widths, default {24, 24}
	Train  TrainConfig
	Seed   int64
}

// defaults fills unset fields.
func (c DIPPMConfig) defaults() DIPPMConfig {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{24, 24}
	}
	if c.Train.Epochs == 0 {
		c.Train = TrainConfig{Epochs: 300, LR: 0.01, Momentum: 0.9, BatchSize: 32}
	}
	return c
}

// TrainDIPPM fits the surrogate on forward-pass samples. Targets are
// learned in log space (runtimes span four orders of magnitude).
func TrainDIPPM(samples []core.Sample, cfg DIPPMConfig) (*DIPPM, error) {
	if len(samples) < 10 {
		return nil, fmt.Errorf("baselines: dippm needs a training dataset, got %d samples", len(samples))
	}
	cfg = cfg.defaults()
	X := make([][]float64, 0, len(samples))
	y := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.Fwd <= 0 {
			return nil, fmt.Errorf("baselines: dippm sample for %s has non-positive time", s.Model)
		}
		X = append(X, dippmFeatures(s.Met, float64(s.BatchPerDevice)))
		y = append(y, math.Log(float64(s.Fwd)))
	}
	d := &DIPPM{}
	nf := len(X[0])
	d.mean = make([]float64, nf)
	d.std = make([]float64, nf)
	for j := 0; j < nf; j++ {
		for i := range X {
			d.mean[j] += X[i][j]
		}
		d.mean[j] /= float64(len(X))
		for i := range X {
			dv := X[i][j] - d.mean[j]
			d.std[j] += dv * dv
		}
		d.std[j] = math.Sqrt(d.std[j] / float64(len(X)))
		if d.std[j] == 0 {
			d.std[j] = 1
		}
	}
	for i := range X {
		for j := range X[i] {
			X[i][j] = (X[i][j] - d.mean[j]) / d.std[j]
		}
	}
	for _, v := range y {
		d.yMean += v
	}
	d.yMean /= float64(len(y))
	for _, v := range y {
		d.yStd += (v - d.yMean) * (v - d.yMean)
	}
	d.yStd = math.Sqrt(d.yStd / float64(len(y)))
	if d.yStd == 0 {
		d.yStd = 1
	}
	for i := range y {
		y[i] = (y[i] - d.yMean) / d.yStd
	}
	sizes := append([]int{nf}, append(cfg.Hidden, 1)...)
	net, err := NewMLP(sizes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := net.Train(X, y, cfg.Train); err != nil {
		return nil, err
	}
	d.net = net
	d.trained = true
	return d, nil
}

// Predict estimates the forward-pass time for metrics met at mini-batch b.
func (d *DIPPM) Predict(met metrics.Metrics, b float64) (float64, error) {
	if !d.trained {
		return 0, errors.New("baselines: dippm not trained")
	}
	x := dippmFeatures(met, b)
	for j := range x {
		x[j] = (x[j] - d.mean[j]) / d.std[j]
	}
	out, err := d.net.Predict(x)
	if err != nil {
		return 0, err
	}
	return math.Exp(out*d.yStd + d.yMean), nil
}
