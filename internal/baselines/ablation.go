// Package baselines implements the comparison predictors of the paper's
// evaluation: the single-metric regressions behind Figure 2 (FLOPs-only,
// Inputs-only, Outputs-only and combinations), a Paleo-style analytical
// model (flops/peak + bytes/bandwidth per layer, no fitting), and a
// DIPPM-like learned predictor (a from-scratch MLP over graph features,
// standing in for the unavailable GNN-based DIPPM — see DESIGN.md for the
// substitution rationale).
package baselines

import (
	"errors"
	"fmt"

	"convmeter/internal/core"
	"convmeter/internal/metrics"
	"convmeter/internal/regress"
)

// MetricMask selects which of the three batch-scaling ConvNet metrics a
// regression may use; the intercept is always included. The paper's
// Figure 2 compares F, I, O individually against the full combination.
type MetricMask struct {
	F, I, O bool
}

// String names the mask, e.g. "FLOPs+Outputs".
func (m MetricMask) String() string {
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if m.F {
		add("FLOPs")
	}
	if m.I {
		add("Inputs")
	}
	if m.O {
		add("Outputs")
	}
	if s == "" {
		return "intercept-only"
	}
	return s
}

// vector assembles the masked feature vector at mini-batch b.
func (m MetricMask) vector(met metrics.Metrics, b float64) []float64 {
	s := met.Scale(b)
	var v []float64
	if m.F {
		v = append(v, float64(s.FLOPs))
	}
	if m.I {
		v = append(v, float64(s.Inputs))
	}
	if m.O {
		v = append(v, float64(s.Outputs))
	}
	return append(v, 1)
}

// AblationModel is a forward-pass regression restricted to a metric
// subset.
type AblationModel struct {
	Mask MetricMask
	reg  *regress.Model
}

// FitAblation fits a restricted inference model on the samples.
func FitAblation(samples []core.Sample, mask MetricMask) (*AblationModel, error) {
	if !mask.F && !mask.I && !mask.O {
		return nil, errors.New("baselines: empty metric mask")
	}
	if len(samples) == 0 {
		return nil, errors.New("baselines: no samples")
	}
	feats := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		feats[i] = mask.vector(s.Met, float64(s.BatchPerDevice))
		y[i] = float64(s.Fwd)
	}
	reg, err := regress.FitRelative(feats, y)
	if err != nil {
		return nil, fmt.Errorf("baselines: %s fit: %w", mask, err)
	}
	return &AblationModel{Mask: mask, reg: reg}, nil
}

// Predict estimates the forward time for metrics met at mini-batch b.
func (m *AblationModel) Predict(met metrics.Metrics, b float64) float64 {
	return m.reg.Predict(m.Mask.vector(met, b))
}

// EvaluateAblationLOMO runs the leave-one-model-out protocol for a metric
// subset (one curve of Figure 2).
func EvaluateAblationLOMO(samples []core.Sample, mask MetricMask) (*core.Evaluation, error) {
	return core.EvaluateLOMO(samples,
		func(train, held []core.Sample) ([]float64, error) {
			m, err := FitAblation(train, mask)
			if err != nil {
				return nil, err
			}
			preds := make([]float64, len(held))
			for i, s := range held {
				preds[i] = m.Predict(s.Met, float64(s.BatchPerDevice))
			}
			return preds, nil
		},
		func(s core.Sample) float64 { return float64(s.Fwd) })
}

// AllMasks enumerates the seven non-empty metric combinations, for the
// extended Figure 2 ablation bench.
func AllMasks() []MetricMask {
	return []MetricMask{
		{F: true},
		{I: true},
		{O: true},
		{F: true, I: true},
		{F: true, O: true},
		{I: true, O: true},
		{F: true, I: true, O: true},
	}
}
