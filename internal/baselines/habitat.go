package baselines

import (
	"fmt"

	"convmeter/internal/core"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
)

// CrossDeviceModel transfers a fitted ConvMeter inference model from one
// device to another without benchmarking the target, in the spirit of
// Habitat (Yu et al., USENIX ATC '21, the paper's related work): the
// compute coefficient scales by the peak-throughput ratio and the
// memory-traffic coefficients by the bandwidth ratio. ConvMeter's
// position is that a small benchmark sweep on the target is cheap and
// more accurate; this baseline quantifies exactly how much accuracy the
// transfer shortcut costs.
type CrossDeviceModel struct {
	src  *core.InferenceModel
	coef []float64
}

// TransferInference scales a model fitted on src so it predicts for dst.
func TransferInference(m *core.InferenceModel, src, dst hwsim.Device) (*CrossDeviceModel, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil source model")
	}
	if src.PeakFLOPS <= 0 || dst.PeakFLOPS <= 0 || src.MemBW <= 0 || dst.MemBW <= 0 {
		return nil, fmt.Errorf("baselines: devices need positive peak and bandwidth")
	}
	c := m.Coefficients() // [c1 (FLOPs), c2 (Inputs), c3 (Outputs), c4]
	computeRatio := src.PeakFLOPS / dst.PeakFLOPS
	memRatio := src.MemBW / dst.MemBW
	overheadRatio := 1.0
	if src.KernelOverhead > 0 && dst.KernelOverhead > 0 {
		overheadRatio = dst.KernelOverhead / src.KernelOverhead
	}
	return &CrossDeviceModel{
		src: m,
		coef: []float64{
			c[0] * computeRatio,
			c[1] * memRatio,
			c[2] * memRatio,
			c[3] * overheadRatio,
		},
	}, nil
}

// Predict estimates the forward time on the *target* device.
func (m *CrossDeviceModel) Predict(met metrics.Metrics, b float64) float64 {
	v := met.Vector(b)
	s := 0.0
	for i, c := range m.coef {
		s += c * v[i]
	}
	return s
}

// Coefficients returns the transferred coefficients.
func (m *CrossDeviceModel) Coefficients() []float64 {
	return append([]float64(nil), m.coef...)
}
