// Package checkpoint gives the experiments harness durable resume state:
// a small JSON key→value store written atomically (temp file + rename)
// after every completed unit of work, so a killed sweep — an interrupted
// LOMO evaluation campaign, a chaos run cut short — restarts from the
// last completed model instead of from scratch.
//
// A store is bound to a fingerprint (seed, quick mode, faults profile…);
// opening an existing file with a different fingerprint discards the
// stale entries rather than resuming into results computed under other
// settings. The package lives on the measured side of the repository's
// analytical/measured boundary: it does filesystem I/O in service of
// long-running measurement campaigns, and the analytical core must never
// depend on it.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// fileFormat is the on-disk shape of a checkpoint store.
type fileFormat struct {
	Fingerprint string                     `json:"fingerprint"`
	Entries     map[string]json.RawMessage `json:"entries"`
}

// Store is a checkpoint file. A nil *Store disables checkpointing: Get
// always misses and Put is a no-op, so harness code threads a
// possibly-nil store through unconditionally.
type Store struct {
	mu          sync.Mutex
	path        string
	fingerprint string
	entries     map[string]json.RawMessage
	resumed     int // entries accepted from a pre-existing file
}

// Open loads or creates the checkpoint file at path. An existing file
// whose fingerprint differs (or that is unreadable as a checkpoint) is
// treated as absent and will be overwritten on the first Put.
func Open(path, fingerprint string) (*Store, error) {
	s := &Store{
		path:        path,
		fingerprint: fingerprint,
		entries:     make(map[string]json.RawMessage),
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var f fileFormat
	if err := json.Unmarshal(data, &f); err != nil || f.Fingerprint != fingerprint {
		// Stale or foreign state: resuming from it would mix results
		// computed under different settings into this run.
		return s, nil
	}
	if f.Entries != nil {
		s.entries = f.Entries
		s.resumed = len(f.Entries)
	}
	return s, nil
}

// Resumed reports how many entries were loaded from a pre-existing,
// fingerprint-matching file.
func (s *Store) Resumed() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumed
}

// Len reports the number of completed entries currently recorded.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Get unmarshals the entry under key into v, reporting whether a
// completed entry existed. A decode failure counts as a miss: the unit
// simply reruns.
func (s *Store) Get(key string, v any) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	raw, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, v) == nil
}

// Put records a completed unit under key and persists the whole store
// durably via WriteFileAtomic — a crash mid-write never corrupts the
// file, and a committed write survives power loss.
func (s *Store) Put(key string, v any) error {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = raw
	data, err := json.MarshalIndent(fileFormat{Fingerprint: s.fingerprint, Entries: s.entries}, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal store: %w", err)
	}
	if err := WriteFileAtomic(s.path, data); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// WriteFileAtomic commits data to path with crash *and* power-loss
// durability: write to a temp file in the same directory, fsync the file
// so its contents reach stable storage before the rename, rename over
// the target (atomic on POSIX), then fsync the parent directory so the
// rename itself is durable. Rename-without-fsync only survives process
// death — after a power cut the filesystem may replay the rename against
// an unwritten inode and leave an empty or truncated "committed" file,
// which is exactly the torn state a fail-close manifest must never
// present. Shared by the checkpoint store and the dagrun manifest store.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
