package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

type unit struct {
	Name  string
	Score float64
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	s, err := Open(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Resumed() != 0 || s.Len() != 0 {
		t.Fatalf("fresh store: resumed=%d len=%d", s.Resumed(), s.Len())
	}
	var miss unit
	if s.Get("a", &miss) {
		t.Fatal("Get hit on an empty store")
	}
	if err := s.Put("a", unit{Name: "alexnet", Score: 0.97}); err != nil {
		t.Fatal(err)
	}
	var got unit
	if !s.Get("a", &got) || got.Name != "alexnet" {
		t.Fatalf("Get after Put = %+v", got)
	}

	// A second Open with the same fingerprint resumes the entries.
	s2, err := Open(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Resumed() != 1 || s2.Len() != 1 {
		t.Fatalf("reopened store: resumed=%d len=%d", s2.Resumed(), s2.Len())
	}
	got = unit{}
	if !s2.Get("a", &got) || got.Score != 0.97 {
		t.Fatalf("resumed Get = %+v", got)
	}
}

func TestFingerprintMismatchDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	s, err := Open(path, "seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, "seed=2")
	if err != nil {
		t.Fatal(err)
	}
	var v int
	if s2.Resumed() != 0 || s2.Get("a", &v) {
		t.Fatal("foreign-fingerprint entries resumed")
	}
	// The first Put under the new fingerprint overwrites the stale file.
	if err := s2.Put("b", 2); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path, "seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if s3.Resumed() != 1 {
		t.Fatalf("resumed %d entries after overwrite, want 1", s3.Resumed())
	}
}

func TestCorruptFileTreatedAsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, "fp")
	if err != nil {
		t.Fatalf("corrupt file should open fresh, got %v", err)
	}
	if s.Resumed() != 0 {
		t.Fatal("resumed entries from a corrupt file")
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var s *Store
	var v int
	if s.Get("a", &v) {
		t.Fatal("nil store Get hit")
	}
	if err := s.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Resumed() != 0 {
		t.Fatal("nil store reports entries")
	}
}

func TestDecodeFailureIsMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	s, err := Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "a string"); err != nil {
		t.Fatal(err)
	}
	var v int
	if s.Get("a", &v) {
		t.Fatal("type-mismatched entry should be a miss, not a hit")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("read back %q, want %q", got, "first")
	}

	// Overwrite must replace the whole file, not append or truncate short.
	if err := WriteFileAtomic(path, []byte("second, longer content")); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second, longer content" {
		t.Fatalf("read back %q after overwrite", got)
	}

	// No temp residue: a crash between temp-write and rename may leave
	// one behind, but a successful write never should.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.json" {
			t.Fatalf("leftover file %q in directory after atomic writes", e.Name())
		}
	}

	// Writing into a missing directory fails rather than silently
	// creating state somewhere unexpected.
	if err := WriteFileAtomic(filepath.Join(dir, "nope", "x.json"), []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
