package pipesim

import (
	"math"
	"testing"

	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/models"
)

func buildNet(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := models.Build(name, 224)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionBalancesFLOPs(t *testing.T) {
	g := buildNet(t, "resnet50")
	for _, k := range []int{1, 2, 4, 8} {
		stages, err := Partition(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(stages) != k {
			t.Fatalf("k=%d: got %d stages", k, len(stages))
		}
		// Stages must tile the node list exactly.
		if stages[0].From != 0 || stages[len(stages)-1].To != len(g.Nodes) {
			t.Fatalf("k=%d: stages do not cover the graph", k)
		}
		for i := 1; i < k; i++ {
			if stages[i].From != stages[i-1].To {
				t.Fatalf("k=%d: gap between stages %d and %d", k, i-1, i)
			}
		}
		// FLOPs balance: no stage above 2× the ideal share (ResNet-50's
		// block granularity permits good balance).
		total := 0.0
		maxStage := 0.0
		for _, st := range stages {
			total += float64(st.Met.FLOPs)
			if float64(st.Met.FLOPs) > maxStage {
				maxStage = float64(st.Met.FLOPs)
			}
		}
		if math.Abs(total-float64(g.TotalFLOPs())) > 1 {
			t.Fatalf("k=%d: stage FLOPs do not sum to total", k)
		}
		if k > 1 && maxStage > 2*total/float64(k) {
			t.Fatalf("k=%d: bottleneck stage has %.2gx the ideal share", k, maxStage*float64(k)/total)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := buildNet(t, "resnet18")
	if _, err := Partition(g, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Partition(g, len(g.Nodes)); err == nil {
		t.Fatal("expected error for k >= node count")
	}
}

func TestBoundaryElemsSequentialChain(t *testing.T) {
	// In a linear chain the boundary is exactly the last node's output.
	b, x := graph.NewBuilder("chain", graph.Shape{C: 4, H: 8, W: 8})
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 16, 3, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := boundaryElems(g, 0, 3); got != 8*8*8 {
		t.Fatalf("boundary = %d, want %d", got, 8*8*8)
	}
	_ = x
}

func TestBoundaryCountsSkipConnections(t *testing.T) {
	// A residual edge crossing the cut must be counted in addition to the
	// main path.
	b, x := graph.NewBuilder("res", graph.Shape{C: 8, H: 4, W: 4})
	c1 := b.Conv(x, "c1", 8, 3, 1, 1)
	r1 := b.ReLU(c1, "r1")
	sum := b.Add("sum", r1, x) // skip edge from the input
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = sum
	// Cut between r1 (node 2) and sum (node 3): both r1's output and the
	// input's output cross.
	if got := boundaryElems(g, 0, 3); got != 2*8*4*4 {
		t.Fatalf("boundary = %d, want %d", got, 2*8*4*4)
	}
}

func TestSimulateMoreMicroBatchesAmortiseFill(t *testing.T) {
	g := buildNet(t, "resnet50")
	stages, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim := hwsim.NewSimulator(hwsim.A100(), 0, 1)
	// One big micro-batch (no pipelining) vs 16 micro-batches.
	mono, err := Simulate(sim, g, stages, NVLink(), 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Simulate(sim, g, stages, NVLink(), 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pipe <= 0 || mono <= 0 {
		t.Fatal("non-positive pipeline times")
	}
	// With 4 stages, pipelining must not be slower than the unpipelined
	// execution of the same partition.
	if pipe > mono {
		t.Fatalf("pipelined %g should beat monolithic %g", pipe, mono)
	}
}

func TestSimulateErrors(t *testing.T) {
	g := buildNet(t, "resnet18")
	stages, _ := Partition(g, 2)
	sim := hwsim.NewSimulator(hwsim.A100(), 0, 1)
	if _, err := Simulate(sim, g, stages, NVLink(), 0, 1); err == nil {
		t.Fatal("expected invalid batch error")
	}
	if _, err := Simulate(sim, g, stages, NVLink(), 4, 8); err == nil {
		t.Fatal("expected micro-batch > batch error")
	}
	if _, err := Simulate(sim, g, nil, NVLink(), 4, 2); err == nil {
		t.Fatal("expected no-stages error")
	}
}

// fitBlockModel fits the block-wise inference model used by the pipeline
// predictor, exactly as in the paper's Table 2 setting.
func fitBlockModel(t *testing.T) *core.InferenceModel {
	t.Helper()
	sc := bench.DefaultBlockScenario(5)
	samples, err := bench.CollectBlocks(sc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictorTracksSimulator(t *testing.T) {
	g := buildNet(t, "resnet50")
	model := fitBlockModel(t)
	sim := hwsim.NewSimulator(hwsim.A100(), 0, 1)
	p := &Predictor{Model: model, Link: NVLink()}
	for _, k := range []int{2, 4} {
		stages, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := p.Predict(stages, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := Simulate(sim, g, stages, NVLink(), 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pred-meas) / meas; rel > 0.6 {
			t.Fatalf("k=%d: prediction %g vs simulated %g (rel %.2f)", k, pred, meas, rel)
		}
	}
}

func TestPredictorErrors(t *testing.T) {
	p := &Predictor{}
	if _, err := p.Predict([]Stage{{}}, 4, 2); err == nil {
		t.Fatal("expected unfitted-model error")
	}
	p.Model = fitBlockModel(t)
	if _, err := p.Predict(nil, 4, 2); err == nil {
		t.Fatal("expected no-stages error")
	}
	if _, err := p.Predict([]Stage{{}}, 2, 4); err == nil {
		t.Fatal("expected micro-batch error")
	}
}

func TestBestStageCount(t *testing.T) {
	g := buildNet(t, "vgg16")
	p := &Predictor{Model: fitBlockModel(t), Link: NVLink()}
	k, tput, err := p.BestStageCount(g, 6, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 6 || tput <= 0 {
		t.Fatalf("best k=%d tput=%g", k, tput)
	}
	// Throughput at the chosen k must beat k=1 (otherwise why pipeline).
	one, err := Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.Predict(one, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k > 1 && tput < 64/t1 {
		t.Fatalf("chosen k=%d tput %g below k=1 tput %g", k, tput, 64/t1)
	}
}
