// Package pipesim extends ConvMeter to pipeline model parallelism — the
// extension the paper sketches in §3: "ConvMeter can be extended to
// support other parallelization strategies, such as model parallelism, by
// leveraging ConvMeter's capability to predict subgraphs or blocks".
//
// A network's topologically ordered node list is partitioned into K
// contiguous stages, each placed on its own device. Inference flows
// through the pipeline in micro-batches (GPipe-style): after a fill phase
// the pipeline's steady-state rate is set by the slowest stage plus the
// activation transfer between stages. pipesim provides both a *simulator*
// of that execution (the measurement source) and a *predictor* that
// composes ConvMeter's fitted block-wise model over the stage subgraphs —
// no pipeline ever has to run to be planned.
package pipesim

import (
	"fmt"

	"convmeter/internal/core"
	"convmeter/internal/graph"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
)

// Stage is one contiguous pipeline stage.
type Stage struct {
	From, To      int             // node range [From, To)
	Met           metrics.Metrics // stage subgraph metrics (batch 1)
	BoundaryElems int64           // activation elements crossing into the next stage, per image
}

// boundaryElems counts activation elements produced inside [from, to)
// and consumed at or after node `to` — the inter-stage transfer volume.
func boundaryElems(g *graph.Graph, from, to int) int64 {
	needed := map[int]bool{}
	for i := to; i < len(g.Nodes); i++ {
		for _, in := range g.Nodes[i].Inputs {
			if in >= from && in < to {
				needed[in] = true
			}
		}
	}
	var total int64
	for id := range needed {
		total += g.Nodes[id].Out.Elems()
	}
	return total
}

// Partition splits the graph into k contiguous stages balanced by FLOPs
// (the standard first-order pipeline balancing criterion). The input node
// stays in the first stage.
func Partition(g *graph.Graph, k int) ([]Stage, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	if k < 1 || k > n-1 {
		return nil, fmt.Errorf("pipesim: cannot split %d nodes into %d stages", n, k)
	}
	total := float64(g.TotalFLOPs())
	if total <= 0 {
		return nil, fmt.Errorf("pipesim: graph %s has no work to partition", g.Name)
	}
	var stages []Stage
	from := 0
	acc := 0.0
	remaining := total
	for i := 0; i < n; i++ {
		acc += float64(g.NodeFLOPs(i))
		remStages := k - len(stages)
		remNodes := n - i - 1
		// Close the stage when it reached its fair share of the remaining
		// work, when later stages would otherwise run out of nodes, or at
		// the end of the graph. Recomputing the target from the remaining
		// work keeps the partition balanced even when a single heavy node
		// overshoots an earlier target.
		cut := i == n-1
		if !cut && remStages > 1 {
			cut = acc >= remaining/float64(remStages) || remNodes == remStages-1
		}
		if cut {
			to := i + 1
			met, err := metrics.FromGraphRange(g, from, to)
			if err != nil {
				return nil, err
			}
			stages = append(stages, Stage{
				From: from, To: to, Met: met,
				BoundaryElems: boundaryElems(g, from, to),
			})
			from = to
			remaining -= acc
			acc = 0
		}
	}
	if len(stages) != k {
		return nil, fmt.Errorf("pipesim: produced %d stages, wanted %d", len(stages), k)
	}
	return stages, nil
}

// Link models the inter-stage transport (e.g. NVLink between pipeline
// neighbours).
type Link struct {
	BW      float64 // bytes/s
	Latency float64 // seconds per transfer
}

// NVLink returns a per-pair NVLink-like link profile.
func NVLink() Link { return Link{BW: 2.0e11, Latency: 3e-6} }

// transferTime is the per-micro-batch activation transfer after a stage.
func (l Link) transferTime(elems int64, microBatch int) float64 {
	if elems == 0 {
		return 0
	}
	bytes := float64(elems) * float64(microBatch) * hwsim.BytesPerElem
	return bytes/l.BW + l.Latency
}

// Simulate executes a GPipe-style inference pipeline on the simulator's
// device: `batch` images are split into micro-batches of size
// `microBatch`; the total time is the pipeline fill (every stage once)
// plus steady-state draining at the bottleneck-stage rate.
func Simulate(sim *hwsim.Simulator, g *graph.Graph, stages []Stage, link Link, batch, microBatch int) (float64, error) {
	if batch <= 0 || microBatch <= 0 || microBatch > batch {
		return 0, fmt.Errorf("pipesim: batch %d / micro-batch %d invalid", batch, microBatch)
	}
	if len(stages) == 0 {
		return 0, fmt.Errorf("pipesim: no stages")
	}
	nMicro := (batch + microBatch - 1) / microBatch
	fill := 0.0
	bottleneck := 0.0
	for i, st := range stages {
		t := sim.ForwardRangeExact(g, st.From, st.To, microBatch)
		if i < len(stages)-1 {
			t += link.transferTime(st.BoundaryElems, microBatch)
		}
		fill += t
		if t > bottleneck {
			bottleneck = t
		}
	}
	return fill + float64(nMicro-1)*bottleneck, nil
}

// Predictor estimates pipeline time from a fitted ConvMeter inference
// model: each stage's compute time is the block-wise prediction on the
// stage's subgraph metrics, composed with the same fill + steady-state
// pipeline algebra. No execution — stages are planned purely from static
// metrics plus the platform coefficients.
type Predictor struct {
	Model *core.InferenceModel
	Link  Link
}

// Predict estimates the pipeline time for the given stages.
func (p *Predictor) Predict(stages []Stage, batch, microBatch int) (float64, error) {
	if p.Model == nil {
		return 0, fmt.Errorf("pipesim: predictor without a fitted model")
	}
	if batch <= 0 || microBatch <= 0 || microBatch > batch {
		return 0, fmt.Errorf("pipesim: batch %d / micro-batch %d invalid", batch, microBatch)
	}
	if len(stages) == 0 {
		return 0, fmt.Errorf("pipesim: no stages")
	}
	nMicro := (batch + microBatch - 1) / microBatch
	fill := 0.0
	bottleneck := 0.0
	for i, st := range stages {
		t := float64(p.Model.Predict(st.Met, float64(microBatch)))
		if t < 0 {
			t = 0
		}
		if i < len(stages)-1 {
			t += p.Link.transferTime(st.BoundaryElems, microBatch)
		}
		fill += t
		if t > bottleneck {
			bottleneck = t
		}
	}
	return fill + float64(nMicro-1)*bottleneck, nil
}

// BestStageCount scans stage counts 1..maxK and returns the count with
// the highest predicted throughput for the workload — the planning
// question model parallelism poses.
func (p *Predictor) BestStageCount(g *graph.Graph, maxK, batch, microBatch int) (int, float64, error) {
	bestK, bestT := 0, 0.0
	for k := 1; k <= maxK; k++ {
		stages, err := Partition(g, k)
		if err != nil {
			return 0, 0, err
		}
		t, err := p.Predict(stages, batch, microBatch)
		if err != nil {
			return 0, 0, err
		}
		tput := float64(batch) / t
		if tput > bestT {
			bestK, bestT = k, tput
		}
	}
	if bestK == 0 {
		return 0, 0, fmt.Errorf("pipesim: no feasible stage count up to %d", maxK)
	}
	return bestK, bestT, nil
}
