package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestLeastSquaresExactSquare(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution of 2x+y=5, x+3y=10 is x=1, y=3.
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresRecoverCoefficients(t *testing.T) {
	// y = 3 + 2*a - 5*b exactly; regression must recover the coefficients.
	rng := rand.New(rand.NewSource(42))
	n := 50
	a := NewMatrix(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		u, v := rng.Float64()*10, rng.Float64()*10
		a.Set(i, 0, 1)
		a.Set(i, 1, u)
		a.Set(i, 2, v)
		b[i] = 3 + 2*u - 5*v
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -5}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-8) {
			t.Fatalf("coef %d = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresOverdeterminedResidualOrthogonality(t *testing.T) {
	// For the least-squares minimiser, the residual must be orthogonal to
	// the column space: Aᵀ(Ax − b) = 0.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		m := 8 + rng.Intn(20)
		n := 2 + rng.Intn(4)
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pred, _ := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = pred[i] - b[i]
		}
		at := a.T()
		g, _ := at.MulVec(res)
		for j := range g {
			if math.Abs(g[j]) > 1e-8 {
				t.Fatalf("iter %d: normal equations violated, grad[%d]=%g", iter, j, g[j])
			}
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Third column is a copy of the second — rank deficient.
	a, _ := FromRows([][]float64{
		{1, 2, 2},
		{1, 4, 4},
		{1, 6, 6},
		{1, 8, 8},
	})
	b := []float64{1, 2, 3, 4}
	if _, err := LeastSquares(a, b); err == nil {
		t.Fatal("expected rank-deficiency error")
	}
}

func TestRidgeFallbackOnRankDeficiency(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2, 2},
		{1, 4, 4},
		{1, 6, 6},
		{1, 8, 8},
	})
	b := []float64{1, 2, 3, 4}
	x, err := RidgeLeastSquares(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.MulVec(x)
	for i := range b {
		if !almostEqual(pred[i], b[i], 1e-2) {
			t.Fatalf("ridge prediction %d = %g, want ≈%g", i, pred[i], b[i])
		}
	}
}

func TestRidgeNegativeLambda(t *testing.T) {
	a := NewMatrix(2, 2)
	if _, err := RidgeLeastSquares(a, []float64{0, 0}, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestLeastSquaresShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3) // rows < cols
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
	sq := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		sq.Set(i, i, 1)
	}
	if _, err := LeastSquares(sq, []float64{1, 2}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	x, err := SolveLinearSystem(a, []float64{9, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+y=9, x+3y=10 → x=17/11, y=31/11
	if !almostEqual(x[0], 17.0/11.0, 1e-10) || !almostEqual(x[1], 31.0/11.0, 1e-10) {
		t.Fatalf("x = %v", x)
	}
	rect := NewMatrix(3, 2)
	if _, err := SolveLinearSystem(rect, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestQRReconstruction(t *testing.T) {
	// Verify that the QR solve reproduces b exactly for a full-rank square
	// system with a known solution, across random instances.
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		n := 2 + rng.Intn(5)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Make it comfortably full-rank by boosting the diagonal.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(xTrue)
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-8) {
				t.Fatalf("iter %d: x[%d] = %g, want %g", iter, i, x[i], xTrue[i])
			}
		}
	}
}

func TestZeroColumnRejected(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 0},
		{2, 0},
		{3, 0},
	})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected rank-deficiency error for zero column")
	}
}
