package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when the design matrix does not have full
// column rank and the plain least-squares solve would divide by (near) zero.
var ErrRankDeficient = errors.New("linalg: rank-deficient design matrix")

// QR holds a Householder QR factorisation of an m×n matrix with m >= n.
// The factorisation is stored compactly: R in the upper triangle of qr and
// the Householder vectors below the diagonal, with their scaling in beta.
type QR struct {
	qr   *Matrix
	beta []float64
}

// DecomposeQR computes the Householder QR factorisation of a.
// The input matrix is not modified.
func DecomposeQR(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	beta := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k.
		colNorm := 0.0
		for i := k; i < m; i++ {
			x := qr.At(i, k)
			colNorm += x * x
		}
		colNorm = math.Sqrt(colNorm)
		if colNorm == 0 {
			beta[k] = 0
			continue
		}
		alpha := qr.At(k, k)
		if alpha > 0 {
			colNorm = -colNorm
		}
		// v = x - colNorm*e1, stored in place with v[k] normalised to 1.
		v0 := alpha - colNorm
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/v0)
		}
		beta[k] = -v0 / colNorm
		qr.Set(k, k, colNorm)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= beta[k]
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, beta: beta}, nil
}

// applyQT computes Qᵀb in place.
func (f *QR) applyQT(b []float64) {
	m, n := f.qr.Rows, f.qr.Cols
	for k := 0; k < n; k++ {
		if f.beta[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s *= f.beta[k]
		b[k] -= s
		for i := k + 1; i < m; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns x minimising ‖Ax − b‖₂ using the factorisation.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	// Check diagonal of R for (near) rank deficiency relative to its scale.
	maxDiag := 0.0
	for k := 0; k < n; k++ {
		if d := math.Abs(f.qr.At(k, k)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return nil, ErrRankDeficient
	}
	for k := 0; k < n; k++ {
		if math.Abs(f.qr.At(k, k)) < 1e-12*maxDiag {
			return nil, ErrRankDeficient
		}
	}
	qtb := make([]float64, m)
	copy(qtb, b)
	f.applyQT(qtb)
	// Back-substitute R x = (Qᵀb)[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.qr.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ‖Ax − b‖₂ by Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := DecomposeQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares solves the Tikhonov-regularised problem
// min ‖Ax − b‖₂² + λ‖x‖₂² by stacking √λ·I below A. It is the fallback
// used when the plain problem is rank deficient (e.g. a metric column is
// identically zero across the benchmark sample).
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge lambda %g", lambda)
	}
	m, n := a.Rows, a.Cols
	aug := NewMatrix(m+n, n)
	copy(aug.Data[:m*n], a.Data)
	sq := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sq)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}

// SolveLinearSystem solves the square system Ax = b via QR.
func SolveLinearSystem(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: system is %dx%d, want square", a.Rows, a.Cols)
	}
	return LeastSquares(a, b)
}
