package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %g, want 0", i, v)
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("unexpected contents: %v", m.Data)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestSetAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatalf("At(1,0) = %g, want 7", m.At(1, 0))
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected error on bad vector length")
	}
}

func TestRowColClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	c := m.Col(0)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0) = %v", c)
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases original data")
	}
}

func TestDotAndNorm(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %g, want 32", d)
	}
	if n := Norm2([]float64{3, 4}); !almostEqual(n, 5, 1e-12) {
		t.Fatalf("Norm2 = %g, want 5", n)
	}
	if n := Norm2(nil); n != 0 {
		t.Fatalf("Norm2(nil) = %g, want 0", n)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Values whose squares overflow float64 individually.
	v := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if n := Norm2(v); !almostEqual(n, want, 1e-12) {
		t.Fatalf("Norm2 overflow-safe = %g, want %g", n, want)
	}
}

func TestStats(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", m)
	}
	if s := StdDev(v); !almostEqual(s, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", s)
	}
	lo, hi := MinMax(v)
	if lo != 2 || hi != 9 {
		t.Fatalf("MinMax = %g,%g", lo, hi)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(rows [][]float64) bool {
		m, err := FromRows(normalizeRows(rows))
		if err != nil {
			return true // skip degenerate inputs
		}
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// normalizeRows trims ragged random rows to a common width so that
// property tests exercise valid matrices.
func normalizeRows(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	w := len(rows[0])
	for _, r := range rows {
		if len(r) < w {
			w = len(r)
		}
	}
	if w == 0 {
		return nil
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = r[:w]
	}
	return out
}

func TestMulVecMatchesMulProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 30; iter++ {
		m := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xm := NewMatrix(n, 1)
		copy(xm.Data, x)
		prod, err := a.Mul(xm)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			if !almostEqual(prod.At(i, 0), vec[i], 1e-12) {
				t.Fatalf("iter %d: Mul vs MulVec mismatch at %d: %g vs %g", iter, i, prod.At(i, 0), vec[i])
			}
		}
	}
}
