// Package linalg provides the small dense linear-algebra kernel ConvMeter
// needs: dense matrices, Householder QR factorisation, and least-squares
// solving. It is deliberately minimal — just enough to fit the paper's
// linear-regression performance models without external dependencies.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialised rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	r := make([]float64, m.Cols)
	copy(r, m.Data[i*m.Cols:(i+1)*m.Cols])
	return r
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m×b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled to avoid overflow, mirroring the classic BLAS dnrm2 approach.
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// MinMax returns the smallest and largest values in v.
// It panics on an empty slice.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("linalg: MinMax of empty slice")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
