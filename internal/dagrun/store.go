package dagrun

import (
	"os"
	"path/filepath"

	"convmeter/internal/dagrun/manifest"
)

// Load-failure classifications for loadManifest. Only reasonCorrupt
// counts against the fail-close counter: an absent manifest is the
// normal first-run case, not a rejection.
const (
	reasonAbsent  = "absent"
	reasonCorrupt = "corrupt"
)

// manifestPath places node id's manifest inside the run directory. New
// rejects ids with path separators, so the id is safe as a file name.
func manifestPath(dir, id string) string {
	return filepath.Join(dir, id+".json")
}

// ensureDir creates the run directory.
func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

// loadManifest reads and verifies node id's manifest, failing closed: a
// manifest that is unreadable, unparsable, hash-mismatched, or filed
// under the wrong node id returns (nil, reasonCorrupt) and the node
// re-runs. Only a manifest that survives every check is returned — and
// even then the executor still compares its fingerprint against the
// current run before trusting it.
func loadManifest(dir, id string) (*manifest.Manifest, string) {
	data, err := os.ReadFile(manifestPath(dir, id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, reasonAbsent
		}
		return nil, reasonCorrupt
	}
	m, err := manifest.Parse(data)
	if err != nil {
		return nil, reasonCorrupt
	}
	if m.Node != id {
		return nil, reasonCorrupt
	}
	return m, ""
}
