package dagrun

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"convmeter/internal/dagrun/manifest"
	"convmeter/internal/faults"
	"convmeter/internal/obs"
)

// chain builds the canonical fit→lomo→report shape with deterministic
// outputs, so committed manifests are byte-stable across runs.
func chain() []Node {
	return []Node{
		{ID: "fit", Config: "cfg-fit", Run: func(in Inputs) (any, error) {
			return map[string]float64{"coef": 1.25}, nil
		}},
		{ID: "lomo", Deps: []string{"fit"}, Config: "cfg-lomo", Run: func(in Inputs) (any, error) {
			var fit map[string]float64
			if err := in.Decode("fit", &fit); err != nil {
				return nil, err
			}
			return map[string]float64{"mape": fit["coef"] * 10}, nil
		}},
		{ID: "report", Deps: []string{"lomo"}, Config: "cfg-report", Run: func(in Inputs) (any, error) {
			var lomo map[string]float64
			if err := in.Decode("lomo", &lomo); err != nil {
				return nil, err
			}
			return map[string]any{"mape": lomo["mape"], "ok": lomo["mape"] < 50}, nil
		}},
	}
}

func chainConfig(dir string) Config {
	return Config{Dir: dir, Code: "dagrun-test@v1", FaultsSeed: 7, FaultsProfile: "none", Workers: 2}
}

// mustExecute builds and runs a DAG, failing the test on any error.
func mustExecute(t *testing.T, cfg Config, nodes []Node) (*Runner, *Report) {
	t.Helper()
	r, err := New(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	return r, rep
}

// outputs collects every node's committed output for bit-identity diffs.
func outputs(r *Runner, nodes []Node) map[string]string {
	out := make(map[string]string, len(nodes))
	for _, n := range nodes {
		if raw, ok := r.Output(n.ID); ok {
			out[n.ID] = string(raw)
		}
	}
	return out
}

// TestExecuteChain: the happy path, durability disabled — outputs flow
// down the chain and every node reports done.
func TestExecuteChain(t *testing.T) {
	r, rep := mustExecute(t, Config{Workers: 2}, chain())
	for _, n := range rep.Nodes {
		if n.State != StateDone {
			t.Fatalf("node %s state %s, want done", n.ID, n.State)
		}
		if n.Attempt != 1 {
			t.Fatalf("node %s attempt %d, want 1", n.ID, n.Attempt)
		}
	}
	raw, ok := r.Output("report")
	if !ok {
		t.Fatal("no report output")
	}
	var rpt map[string]any
	if err := json.Unmarshal(raw, &rpt); err != nil {
		t.Fatal(err)
	}
	if rpt["mape"] != 12.5 || rpt["ok"] != true {
		t.Fatalf("report = %v", rpt)
	}
	if rep.Schema != SchemaV1 {
		t.Fatalf("schema %q, want %q", rep.Schema, SchemaV1)
	}
}

// TestNewRejectsMalformedDAGs: every structural defect is caught before
// anything runs.
func TestNewRejectsMalformedDAGs(t *testing.T) {
	noop := func(in Inputs) (any, error) { return 0, nil }
	cases := map[string][]Node{
		"empty set":   {},
		"empty id":    {{ID: "", Run: noop}},
		"path sep id": {{ID: "a/b", Run: noop}},
		"dot id":      {{ID: "..", Run: noop}},
		"nil run":     {{ID: "a"}},
		"dup id":      {{ID: "a", Run: noop}, {ID: "a", Run: noop}},
		"unknown dep": {{ID: "a", Deps: []string{"ghost"}, Run: noop}},
		"self dep":    {{ID: "a", Deps: []string{"a"}, Run: noop}},
		"dup dep":     {{ID: "a", Run: noop}, {ID: "b", Deps: []string{"a", "a"}, Run: noop}},
		"cycle": {
			{ID: "a", Deps: []string{"c"}, Run: noop},
			{ID: "b", Deps: []string{"a"}, Run: noop},
			{ID: "c", Deps: []string{"b"}, Run: noop},
		},
	}
	for name, nodes := range cases {
		if _, err := New(Config{}, nodes); err == nil {
			t.Errorf("%s: New accepted a malformed DAG", name)
		}
	}
}

func TestExecuteTwice(t *testing.T) {
	r, err := New(Config{}, chain())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Execute(); err == nil {
		t.Fatal("second Execute did not error")
	}
}

// TestParallelOverlap: two independent nodes rendezvous inside their Run
// functions — each refuses to finish until the other has started. The
// test passes only if the executor truly overlaps them; a serial
// executor would deadlock the rendezvous and fail on the timeout error.
func TestParallelOverlap(t *testing.T) {
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	meet := func(mine, other chan struct{}) (any, error) {
		close(mine)
		select {
		case <-other:
			return "overlapped", nil
		case <-time.After(10 * time.Second):
			return nil, errors.New("peer never started: nodes did not run in parallel")
		}
	}
	nodes := []Node{
		{ID: "a", Run: func(in Inputs) (any, error) { return meet(aStarted, bStarted) }},
		{ID: "b", Run: func(in Inputs) (any, error) { return meet(bStarted, aStarted) }},
		{ID: "join", Deps: []string{"a", "b"}, Run: func(in Inputs) (any, error) {
			var a, b string
			if err := in.Decode("a", &a); err != nil {
				return nil, err
			}
			if err := in.Decode("b", &b); err != nil {
				return nil, err
			}
			return a + "+" + b, nil
		}},
	}
	_, rep := mustExecute(t, Config{Workers: 2}, nodes)
	if st := rep.Node("join"); st == nil || st.State != StateDone {
		t.Fatalf("join did not complete: %+v", st)
	}
}

// TestWorkerPoolBound: the pool is a hard bound, not advisory — with
// Workers=2, eight independent nodes never observe more than two Runs
// in flight at once.
func TestWorkerPoolBound(t *testing.T) {
	var mu sync.Mutex
	inFlight, peak := 0, 0
	var nodes []Node
	for _, id := range []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"} {
		nodes = append(nodes, Node{ID: id, Run: func(in Inputs) (any, error) {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return 1, nil
		}})
	}
	mustExecute(t, Config{Workers: 2}, nodes)
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Fatalf("observed %d concurrent Runs, pool bound is 2", peak)
	}
	if peak < 1 {
		t.Fatalf("no Run observed")
	}
}

// TestFailureSkipsDependents: a node error aborts the run; dependents
// are skipped with blame, and Execute surfaces the node's error.
func TestFailureSkipsDependents(t *testing.T) {
	boom := errors.New("boom")
	nodes := []Node{
		{ID: "a", Run: func(in Inputs) (any, error) { return nil, boom }},
		{ID: "b", Deps: []string{"a"}, Run: func(in Inputs) (any, error) { return 1, nil }},
	}
	r, err := New(Config{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if st := rep.Node("a"); st.State != StateFailed || st.Error == "" {
		t.Fatalf("a: %+v", st)
	}
	if st := rep.Node("b"); st.State != StateSkipped || st.Blame == "" {
		t.Fatalf("b: %+v", st)
	}
}

// TestCrashResumeMatrix is the acceptance proof: for every node and
// every crash point (boundary and mid-node), a seed-scheduled kill
// aborts the run with ErrCrashed, and a resume over the same directory
// completes with every output bit-identical to an uninterrupted run.
func TestCrashResumeMatrix(t *testing.T) {
	clean, _ := mustExecute(t, chainConfig(t.TempDir()), chain())
	want := outputs(clean, chain())
	if len(want) != 3 {
		t.Fatalf("clean run committed %d outputs, want 3", len(want))
	}
	for _, nodeID := range []string{"fit", "lomo", "report"} {
		for _, point := range []string{faults.NodeCrashBoundary, faults.NodeCrashMid} {
			t.Run(nodeID+"@"+point, func(t *testing.T) {
				dir := t.TempDir()
				inj, err := faults.New(7, faults.Profile{NodeCrashes: map[string]string{nodeID: point}}, nil)
				if err != nil {
					t.Fatal(err)
				}
				cfg := chainConfig(dir)
				cfg.Faults = inj
				r, err := New(cfg, chain())
				if err != nil {
					t.Fatal(err)
				}
				rep, err := r.Execute()
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("crashed run err = %v, want ErrCrashed", err)
				}
				if rep.Crashed != nodeID+"@"+point {
					t.Fatalf("blame %q, want %q", rep.Crashed, nodeID+"@"+point)
				}
				if st := rep.Node(nodeID); st.State != StateFailed || st.Blame != "crash@"+point {
					t.Fatalf("crashed node: %+v", st)
				}
				// The crashed node must not have committed a manifest: a
				// mid-node crash loses the work, that is the point.
				if _, err := os.Stat(manifestPath(dir, nodeID)); !os.IsNotExist(err) {
					t.Fatalf("crashed node %s committed a manifest", nodeID)
				}
				// Resume: same run identity, no kill schedule.
				resumed, rrep := mustExecute(t, chainConfig(dir), chain())
				got := outputs(resumed, chain())
				for id, w := range want {
					if got[id] != w {
						t.Fatalf("node %s output diverged after resume:\n resumed: %s\n clean:   %s", id, got[id], w)
					}
				}
				// Everything upstream of the crash was committed and must
				// be served from its manifest, not re-run.
				wantResumed := map[string]int{"fit": 0, "lomo": 1, "report": 2}[nodeID]
				if rrep.Resumed != wantResumed {
					t.Fatalf("resume reused %d nodes, want %d", rrep.Resumed, wantResumed)
				}
			})
		}
	}
}

// TestStaleManifestFailsClosed: editing a node's config and re-running
// over the same directory must re-run that node AND everything
// downstream (the input-hash chain moves), while untouched upstream
// nodes are still reused. Run under the chaos faults identity to match
// the acceptance criteria's second leg.
func TestStaleManifestFailsClosed(t *testing.T) {
	dir := t.TempDir()
	prof, err := faults.ByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(11, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dir: dir, Code: "dagrun-test@v1", FaultsSeed: 11, FaultsProfile: "chaos", Workers: 2, Faults: inj}
	mustExecute(t, cfg, chain())

	o := obs.New()
	stale := chain()
	stale[1].Config = "cfg-lomo-v2" // same path, different config: stale
	cfg2 := cfg
	cfg2.Obs = o
	r, err := New(cfg2, stale)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st := rep.Node("fit"); st.State != StateReused {
		t.Fatalf("fit state %s, want reused", st.State)
	}
	if st := rep.Node("lomo"); st.State != StateDone || st.Attempt != 2 {
		t.Fatalf("stale lomo must re-run with attempt 2: %+v", st)
	}
	if st := rep.Node("report"); st.State != StateDone || st.Attempt != 2 {
		t.Fatalf("downstream report must re-run: %+v", st)
	}
	if got := o.Counter(obs.Label("convmeter_dag_failclose_total", "reason", "fingerprint"),
		"manifests rejected fail-close, forcing a re-run").Value(); got != 2 {
		t.Fatalf("failclose{fingerprint} = %g, want 2", got)
	}
}

// TestTamperedManifestFailsClosed: a manifest whose bytes were edited on
// disk (valid JSON, wrong content hash) is never trusted — the node
// re-runs. And because the re-run recommits the original content, the
// downstream fingerprint chain heals: report is reused again.
func TestTamperedManifestFailsClosed(t *testing.T) {
	dir := t.TempDir()
	mustExecute(t, chainConfig(dir), chain())

	path := manifestPath(dir, "lomo")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"mape": 12.5`), []byte(`"mape": 1.5`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatalf("tamper target not found in manifest:\n%s", data)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	cfg := chainConfig(dir)
	cfg.Obs = o
	r, rep := mustExecute(t, cfg, chain())
	if st := rep.Node("lomo"); st.State != StateDone {
		t.Fatalf("tampered lomo state %s, want done (re-run)", st.State)
	}
	if st := rep.Node("fit"); st.State != StateReused {
		t.Fatalf("fit state %s, want reused", st.State)
	}
	if st := rep.Node("report"); st.State != StateReused {
		t.Fatalf("report state %s, want reused (chain healed)", st.State)
	}
	if got := o.Counter(obs.Label("convmeter_dag_failclose_total", "reason", "corrupt"),
		"manifests rejected fail-close, forcing a re-run").Value(); got != 1 {
		t.Fatalf("failclose{corrupt} = %g, want 1", got)
	}
	raw, _ := r.Output("lomo")
	var lomo map[string]float64
	if err := json.Unmarshal(raw, &lomo); err != nil {
		t.Fatal(err)
	}
	if lomo["mape"] != 12.5 {
		t.Fatalf("re-run output %v, want the true value 12.5", lomo)
	}
}

// TestManifestOnDiskVerifies: every committed manifest parses fail-close
// and chains input hashes to its dependencies' manifests.
func TestManifestOnDiskVerifies(t *testing.T) {
	dir := t.TempDir()
	mustExecute(t, chainConfig(dir), chain())
	hashes := map[string]string{}
	for _, id := range []string{"fit", "lomo", "report"} {
		data, err := os.ReadFile(manifestPath(dir, id))
		if err != nil {
			t.Fatal(err)
		}
		m, err := manifest.Parse(data)
		if err != nil {
			t.Fatalf("manifest %s: %v", id, err)
		}
		if m.Node != id {
			t.Fatalf("manifest %s names node %s", id, m.Node)
		}
		for dep, h := range m.Inputs {
			if hashes[dep] != h {
				t.Fatalf("manifest %s input %s hash %s, dependency committed %s", id, dep, h, hashes[dep])
			}
		}
		hashes[id] = m.Hash
	}
}

// TestMetricsAndLiveReport: the convmeter_dag_* gauges land on their
// terminal values and WriteJSON serves a parseable audit trail.
func TestMetricsAndLiveReport(t *testing.T) {
	o := obs.New()
	cfg := chainConfig(t.TempDir())
	cfg.Obs = o
	r, _ := mustExecute(t, cfg, chain())

	if v := o.Gauge(obs.Label("convmeter_dag_nodes", "state", StateDone),
		"DAG nodes by execution state").Value(); v != 3 {
		t.Fatalf("nodes{done} = %g, want 3", v)
	}
	if v := o.Gauge(obs.Label("convmeter_dag_nodes", "state", StatePending),
		"DAG nodes by execution state").Value(); v != 0 {
		t.Fatalf("nodes{pending} = %g, want 0", v)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("/dag body does not parse: %v", err)
	}
	if rep.Schema != SchemaV1 || len(rep.Nodes) != 3 {
		t.Fatalf("report: %+v", rep)
	}
	for _, n := range rep.Nodes {
		if n.State == StateDone && n.Manifest == "" {
			t.Fatalf("done node %s has no manifest hash", n.ID)
		}
	}

	// Nil-safety: a nil Runner serves an empty, schema-tagged report —
	// the ops server registers /dag before any run starts.
	var nilRunner *Runner
	buf.Reset()
	if err := nilRunner.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(SchemaV1)) {
		t.Fatalf("nil runner report: %s", buf.Bytes())
	}
}

// TestNoGoroutineLeaks: after Execute returns — complete, failed, or
// crashed — every worker goroutine is gone.
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// A wider DAG than workers, so the pool queue is exercised.
	noop := func(in Inputs) (any, error) { return 1, nil }
	nodes := []Node{
		{ID: "a", Run: noop},
		{ID: "b", Run: noop},
		{ID: "c", Run: noop},
		{ID: "d", Deps: []string{"a", "b"}, Run: noop},
		{ID: "e", Deps: []string{"b", "c"}, Run: noop},
		{ID: "f", Deps: []string{"d", "e"}, Run: noop},
	}
	mustExecute(t, Config{Workers: 2}, nodes)

	inj, err := faults.New(3, faults.Profile{NodeCrashes: map[string]string{"b": faults.NodeCrashMid}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Workers: 2, Faults: inj}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Execute(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
