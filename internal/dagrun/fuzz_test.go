package dagrun

import (
	"testing"

	"convmeter/internal/dagrun/manifest"
)

// FuzzParseManifest hammers the fail-close parser with arbitrary bytes.
// The invariant under fuzz: Parse either errors, or returns a manifest
// that satisfies every trust precondition — correct schema, verified
// content hash, well-formed fingerprint and input hashes — and that
// survives a Seal/Parse round trip unchanged. Any input that parses but
// would not verify is a hole in the fail-close rule. Seed corpus lives
// in testdata/fuzz/FuzzParseManifest; go test runs the corpus as normal
// regression cases.
func FuzzParseManifest(f *testing.F) {
	valid, err := manifest.Seal(&manifest.Manifest{
		Node:        "fit",
		Fingerprint: manifest.Fingerprint(manifest.FingerprintInput{Code: "fuzz@v1", Config: "cfg"}),
		Code:        "fuzz@v1",
		Config:      "cfg",
		Attempt:     1,
		Output:      []byte(`{"coef":1.25}`),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"convmeter/dag-manifest/v1"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := manifest.Parse(data)
		if err != nil {
			return // rejected: fail-close did its job
		}
		if m.Schema != manifest.SchemaV1 {
			t.Fatalf("accepted schema %q", m.Schema)
		}
		if m.Node == "" || m.Attempt < 1 {
			t.Fatalf("accepted ill-formed manifest: %+v", m)
		}
		if !manifest.WellFormedHash(m.Fingerprint) || !manifest.WellFormedHash(m.Hash) {
			t.Fatalf("accepted malformed hash/fingerprint: %+v", m)
		}
		if got := manifest.HashOf(m); got != m.Hash {
			t.Fatalf("accepted manifest whose hash does not verify: %s != %s", got, m.Hash)
		}
		resealed, err := manifest.Seal(m)
		if err != nil {
			t.Fatalf("accepted manifest Seal rejects: %v", err)
		}
		m2, err := manifest.Parse(resealed)
		if err != nil {
			t.Fatalf("round trip broke a valid manifest: %v", err)
		}
		if m2.Hash != m.Hash || string(m2.Output) != string(m.Output) {
			t.Fatalf("round trip mutated manifest: %+v != %+v", m2, m)
		}
	})
}
