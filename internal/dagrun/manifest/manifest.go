// Package manifest defines the content-addressed run manifest that binds
// one DAG node's output to the exact inputs that produced it: a code
// fingerprint, the node's configuration, the manifest hashes of every
// dependency, and the fault seed/profile the run executed under. The
// executor (internal/dagrun) trusts a manifest only when its recomputed
// content hash matches the stored one AND its fingerprint matches the
// fingerprint of the current run — anything else fails closed and the
// node re-runs. A manifest can therefore never launder an output computed
// under different code, configuration, inputs or fault schedule into a
// resumed run.
//
// The package is classified deterministic in lint.config: hashing and
// fingerprinting are pure functions of their inputs, every map is
// iterated in sorted key order (see DESIGN.md §6 — a map-range into a
// hash would make the same manifest hash differently on every run,
// silently invalidating every resume), and nothing here touches a clock,
// a goroutine or the filesystem. The measured executor above does the
// I/O.
package manifest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// SchemaV1 tags the manifest format; cmd/obscheck -manifest checks it.
const SchemaV1 = "convmeter/dag-manifest/v1"

// Manifest is the durable record of one completed DAG node.
type Manifest struct {
	// Schema is always SchemaV1.
	Schema string `json:"schema"`
	// Node is the DAG node id this manifest belongs to.
	Node string `json:"node"`
	// Fingerprint is Fingerprint() of the run that produced the output:
	// the executor re-runs the node whenever the current run's
	// fingerprint differs.
	Fingerprint string `json:"fingerprint"`
	// Code, Config, FaultsSeed, FaultsProfile and Inputs are the
	// fingerprint's components, stored openly so an audit (or obscheck)
	// can explain *why* a fingerprint mismatched.
	Code          string `json:"code"`
	Config        string `json:"config"`
	FaultsSeed    int64  `json:"faults_seed"`
	FaultsProfile string `json:"faults_profile"`
	// Inputs maps each dependency node id to the Hash of the manifest
	// whose output this node consumed.
	Inputs map[string]string `json:"inputs"`
	// Attempt counts executions of this node across the run's lifetime,
	// resumes included; starts at 1.
	Attempt int `json:"attempt"`
	// Output is the node's JSON-encoded result, held and hashed in
	// compact form (Seal and Parse both canonicalize), so the content
	// hash is invariant to how the document was indented on disk.
	Output json.RawMessage `json:"output"`
	// Hash is the content address: HashOf over every field above. A
	// manifest whose stored hash does not match its recomputed one is
	// corrupt and must not be trusted.
	Hash string `json:"hash"`
}

// FingerprintInput carries everything a node's identity depends on.
type FingerprintInput struct {
	Code          string
	Config        string
	FaultsSeed    int64
	FaultsProfile string
	// Inputs maps dependency node id to that dependency's manifest hash,
	// chaining content addresses: a change anywhere upstream changes
	// every downstream fingerprint.
	Inputs map[string]string
}

// Fingerprint derives the node fingerprint from its inputs. Inputs are
// folded in sorted key order — the determinism contract (DESIGN.md §6):
// ranging the map directly would hash the same node differently from one
// process to the next.
func Fingerprint(in FingerprintInput) string {
	h := sha256.New()
	writeField(h, "code", in.Code)
	writeField(h, "config", in.Config)
	writeField(h, "faults_seed", strconv.FormatInt(in.FaultsSeed, 10))
	writeField(h, "faults_profile", in.FaultsProfile)
	for _, k := range sortedKeys(in.Inputs) {
		writeField(h, "input:"+k, in.Inputs[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashOf computes a manifest's content address over every field except
// Hash itself, again iterating Inputs in sorted key order.
func HashOf(m *Manifest) string {
	h := sha256.New()
	writeField(h, "schema", m.Schema)
	writeField(h, "node", m.Node)
	writeField(h, "fingerprint", m.Fingerprint)
	writeField(h, "code", m.Code)
	writeField(h, "config", m.Config)
	writeField(h, "faults_seed", strconv.FormatInt(m.FaultsSeed, 10))
	writeField(h, "faults_profile", m.FaultsProfile)
	for _, k := range sortedKeys(m.Inputs) {
		writeField(h, "input:"+k, m.Inputs[k])
	}
	writeField(h, "attempt", strconv.Itoa(m.Attempt))
	writeField(h, "output", string(m.Output))
	return hex.EncodeToString(h.Sum(nil))
}

// Seal stamps the schema and content hash onto m and returns its
// serialized form, ready for an atomic write.
func Seal(m *Manifest) ([]byte, error) {
	m.Schema = SchemaV1
	if err := wellFormed(m); err != nil {
		return nil, err
	}
	m.Output = compactOutput(m.Output)
	m.Hash = HashOf(m)
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, fmt.Errorf("manifest: marshal node %s: %w", m.Node, err)
	}
	return append(data, '\n'), nil
}

// Parse decodes and verifies a manifest, failing closed: any structural
// defect — wrong schema, malformed fingerprint, a stored hash that does
// not match the recomputed content hash — is an error, never a value the
// caller might mistakenly trust.
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Schema != SchemaV1 {
		return nil, fmt.Errorf("manifest: schema %q, want %q", m.Schema, SchemaV1)
	}
	if err := wellFormed(&m); err != nil {
		return nil, err
	}
	m.Output = compactOutput(m.Output)
	if !WellFormedHash(m.Hash) {
		return nil, fmt.Errorf("manifest: node %s: malformed hash %q", m.Node, m.Hash)
	}
	if got := HashOf(&m); got != m.Hash {
		return nil, fmt.Errorf("manifest: node %s: stored hash %s != recomputed %s (corrupt or tampered)",
			m.Node, m.Hash, got)
	}
	return &m, nil
}

// wellFormed checks the invariants shared by Seal and Parse.
func wellFormed(m *Manifest) error {
	if m.Node == "" {
		return errors.New("manifest: empty node id")
	}
	if !WellFormedHash(m.Fingerprint) {
		return fmt.Errorf("manifest: node %s: malformed fingerprint %q", m.Node, m.Fingerprint)
	}
	if m.Attempt < 1 {
		return fmt.Errorf("manifest: node %s: attempt %d, want >= 1", m.Node, m.Attempt)
	}
	for _, k := range sortedKeys(m.Inputs) {
		if k == "" {
			return fmt.Errorf("manifest: node %s: input with empty node id", m.Node)
		}
		if !WellFormedHash(m.Inputs[k]) {
			return fmt.Errorf("manifest: node %s: malformed input hash %q for %s", m.Node, m.Inputs[k], k)
		}
	}
	if len(m.Output) == 0 || !json.Valid(m.Output) {
		return fmt.Errorf("manifest: node %s: output is not valid JSON", m.Node)
	}
	return nil
}

// compactOutput canonicalizes an already-validated output to compact
// JSON. MarshalIndent reflows nested raw messages, so without this the
// same output would hash differently before and after a disk round trip.
func compactOutput(raw json.RawMessage) json.RawMessage {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw // unreachable after wellFormed; keep bytes as-is
	}
	return buf.Bytes()
}

// WellFormedHash reports whether s looks like a hash this package
// produced: 64 lowercase hex digits.
func WellFormedHash(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeField folds one length-prefixed field into the hash. The length
// prefix keeps field boundaries unambiguous: ("ab","c") and ("a","bc")
// must not hash alike.
func writeField(h interface{ Write(p []byte) (int, error) }, key, val string) {
	_, _ = fmt.Fprintf(h, "%d:%s=%d:%s;", len(key), key, len(val), val)
}

// sortedKeys returns the map's keys in sorted order — the only order any
// hash input is ever iterated in.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
