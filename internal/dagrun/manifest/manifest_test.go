package manifest

import (
	"encoding/json"
	"strings"
	"testing"
)

func validManifest() *Manifest {
	return &Manifest{
		Node: "lomo",
		Fingerprint: Fingerprint(FingerprintInput{
			Code:          "convmeter/experiments@v1",
			Config:        "quick=true seed=7",
			FaultsSeed:    7,
			FaultsProfile: "chaos",
			Inputs:        map[string]string{"fit": strings.Repeat("ab", 32)},
		}),
		Code:          "convmeter/experiments@v1",
		Config:        "quick=true seed=7",
		FaultsSeed:    7,
		FaultsProfile: "chaos",
		Inputs:        map[string]string{"fit": strings.Repeat("ab", 32)},
		Attempt:       1,
		Output:        json.RawMessage(`{"mape":12.5}`),
	}
}

// TestFingerprintDeterministic: the fingerprint is a pure function of its
// inputs, independent of map insertion order — the determinism contract
// that makes resume possible at all.
func TestFingerprintDeterministic(t *testing.T) {
	h := strings.Repeat("0a", 32)
	a := FingerprintInput{Code: "c", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p",
		Inputs: map[string]string{}}
	b := FingerprintInput{Code: "c", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p",
		Inputs: map[string]string{}}
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		a.Inputs[k] = h
	}
	for _, k := range []string{"e", "d", "c", "b", "a"} {
		b.Inputs[k] = h
	}
	fa, fb := Fingerprint(a), Fingerprint(b)
	if fa != fb {
		t.Fatalf("fingerprint depends on insertion order: %s != %s", fa, fb)
	}
	if !WellFormedHash(fa) {
		t.Fatalf("fingerprint %q is not well-formed", fa)
	}
}

// TestFingerprintSensitivity: every component must move the fingerprint —
// a component that doesn't is a staleness class the fail-close rule
// cannot see.
func TestFingerprintSensitivity(t *testing.T) {
	base := FingerprintInput{Code: "c", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p",
		Inputs: map[string]string{"fit": strings.Repeat("0a", 32)}}
	ref := Fingerprint(base)
	variants := map[string]FingerprintInput{
		"code":       {Code: "c2", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p", Inputs: base.Inputs},
		"config":     {Code: "c", Config: "cfg2", FaultsSeed: 3, FaultsProfile: "p", Inputs: base.Inputs},
		"seed":       {Code: "c", Config: "cfg", FaultsSeed: 4, FaultsProfile: "p", Inputs: base.Inputs},
		"profile":    {Code: "c", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p2", Inputs: base.Inputs},
		"input hash": {Code: "c", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p", Inputs: map[string]string{"fit": strings.Repeat("0b", 32)}},
		"input key":  {Code: "c", Config: "cfg", FaultsSeed: 3, FaultsProfile: "p", Inputs: map[string]string{"fit2": strings.Repeat("0a", 32)}},
	}
	for name, in := range variants {
		if Fingerprint(in) == ref {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	// Field boundaries are length-prefixed: shuffling bytes across the
	// code/config boundary must not collide.
	x := Fingerprint(FingerprintInput{Code: "ab", Config: "c"})
	y := Fingerprint(FingerprintInput{Code: "a", Config: "bc"})
	if x == y {
		t.Fatal("code/config boundary ambiguity: (ab,c) and (a,bc) collide")
	}
}

// TestSealParseRoundTrip: Seal's output parses back to the same manifest.
func TestSealParseRoundTrip(t *testing.T) {
	m := validManifest()
	data, err := Seal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("parse sealed manifest: %v", err)
	}
	if got.Node != m.Node || got.Fingerprint != m.Fingerprint || got.Hash != m.Hash {
		t.Fatalf("round trip mutated manifest: %+v != %+v", got, m)
	}
	if got.Schema != SchemaV1 {
		t.Fatalf("schema = %q, want %q", got.Schema, SchemaV1)
	}
	if string(got.Output) != string(m.Output) {
		t.Fatalf("output mutated: %s != %s", got.Output, m.Output)
	}
}

// TestParseFailsClose: every structural defect is an error — a manifest
// the executor might mistakenly trust must never come back as a value.
func TestParseFailsClose(t *testing.T) {
	seal := func(mutate func(m *Manifest)) []byte {
		m := validManifest()
		data, err := Seal(m)
		if err != nil {
			t.Fatal(err)
		}
		if mutate == nil {
			return data
		}
		var parsed Manifest
		if err := json.Unmarshal(data, &parsed); err != nil {
			t.Fatal(err)
		}
		mutate(&parsed)
		out, err := json.Marshal(&parsed)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	sealWithout := func(field string) []byte {
		m := validManifest()
		data, err := Seal(m)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		delete(doc, field)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"not json":       []byte("{"),
		"empty":          nil,
		"no output":      sealWithout("output"),
		"no hash":        sealWithout("hash"),
		"no fingerprint": sealWithout("fingerprint"),
		"wrong schema":   seal(func(m *Manifest) { m.Schema = "convmeter/dag-manifest/v0" }),
		"tampered out":   seal(func(m *Manifest) { m.Output = json.RawMessage(`{"mape":1.0}`) }),
		"tampered cfg":   seal(func(m *Manifest) { m.Config = "quick=false" }),
		"tampered hash":  seal(func(m *Manifest) { m.Hash = strings.Repeat("00", 32) }),
		"short hash":     seal(func(m *Manifest) { m.Hash = "abc" }),
		"upper hash":     seal(func(m *Manifest) { m.Hash = strings.ToUpper(m.Hash) }),
		"no node":        seal(func(m *Manifest) { m.Node = "" }),
		"bad fp":         seal(func(m *Manifest) { m.Fingerprint = "zz" }),
		"attempt 0":      seal(func(m *Manifest) { m.Attempt = 0 }),
		"bad input hash": seal(func(m *Manifest) { m.Inputs = map[string]string{"fit": "nope"} }),
		"empty inputkey": seal(func(m *Manifest) { m.Inputs = map[string]string{"": strings.Repeat("ab", 32)} }),
	}
	for name, data := range cases {
		if m, err := Parse(data); err == nil {
			t.Errorf("%s: Parse accepted a defective manifest: %+v", name, m)
		}
	}
}

// TestSealRejectsIllFormed: Seal refuses to commit a manifest that Parse
// would reject — the invariants hold at write time, not just read time.
func TestSealRejectsIllFormed(t *testing.T) {
	for name, mutate := range map[string]func(m *Manifest){
		"no node":    func(m *Manifest) { m.Node = "" },
		"bad fp":     func(m *Manifest) { m.Fingerprint = "short" },
		"attempt 0":  func(m *Manifest) { m.Attempt = 0 },
		"bad output": func(m *Manifest) { m.Output = json.RawMessage("not json") },
	} {
		m := validManifest()
		mutate(m)
		if _, err := Seal(m); err == nil {
			t.Errorf("%s: Seal committed an ill-formed manifest", name)
		}
	}
}

func TestWellFormedHash(t *testing.T) {
	if !WellFormedHash(strings.Repeat("0f", 32)) {
		t.Fatal("rejected a valid hash")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0F", 32), strings.Repeat("0g", 32), strings.Repeat("0a", 33)} {
		if WellFormedHash(bad) {
			t.Errorf("accepted malformed hash %q", bad)
		}
	}
}
