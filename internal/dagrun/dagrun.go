// Package dagrun is the durable experiment orchestrator: a
// dependency-aware DAG executor with content-addressed, fail-close run
// manifests. Independent nodes run in parallel on a bounded worker pool;
// each completed node commits a manifest (internal/dagrun/manifest)
// binding its JSON output to a fingerprint of (code fingerprint, node
// config, input-manifest hashes, faults seed/profile), written with the
// checkpoint store's power-loss-durable atomic write. A later run over
// the same directory resumes: a node whose manifest parses, whose
// content hash verifies and whose fingerprint matches the current run is
// served from disk; anything else — corrupt file, tampered output,
// edited config, changed dependency — fails closed and re-runs. Trust is
// never assumed, only re-derived.
//
// Crash-resume is provable, not hoped for: the fault injector
// (internal/faults) schedules process-level ClassCrash faults at node
// boundaries and mid-node (after the work, before the commit), Execute
// aborts with ErrCrashed exactly as a killed process would — losing
// every uncommitted output — and the resume matrix in the tests kills a
// run at every boundary and verifies the resumed run's results are
// bit-identical to an uninterrupted one.
//
// The package lives on the measured side of the analytical/measured
// boundary: it spawns goroutines, reads clocks and writes files. The
// manifest subpackage underneath is classified deterministic — hashing
// must be a pure function or no manifest would ever verify twice.
package dagrun

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"convmeter/internal/checkpoint"
	"convmeter/internal/dagrun/manifest"
	"convmeter/internal/faults"
	"convmeter/internal/obs"
)

// Node declares one unit of the DAG.
type Node struct {
	// ID names the node; it doubles as the manifest file name, so it must
	// be non-empty and contain no path separators.
	ID string
	// Deps lists the node ids whose outputs this node consumes. The
	// executor starts the node only after every dependency committed.
	Deps []string
	// Config is the node's configuration fingerprint component: every
	// setting that shaped the output belongs in it, because a manifest
	// whose config differs is stale and must not be reused.
	Config string
	// Run computes the node's output from its dependencies' outputs. The
	// returned value is JSON-marshalled immediately — the manifest's
	// content — and dependents see only that serialized form, so resumed
	// and uninterrupted runs feed dependents identical bytes.
	Run func(in Inputs) (any, error)
}

// Inputs gives a node's Run access to its dependencies' outputs.
type Inputs struct {
	outputs map[string]json.RawMessage
}

// Decode unmarshals dependency dep's output into v.
func (in Inputs) Decode(dep string, v any) error {
	raw, ok := in.outputs[dep]
	if !ok {
		return fmt.Errorf("dagrun: node has no dependency %q", dep)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("dagrun: decode input %q: %w", dep, err)
	}
	return nil
}

// Config parameterises a Runner.
type Config struct {
	// Dir is the manifest directory; empty disables durability (the DAG
	// still executes, in memory only).
	Dir string
	// Code is the code fingerprint component: a version tag the caller
	// bumps whenever node semantics change, invalidating every manifest
	// written under the old code.
	Code string
	// FaultsSeed and FaultsProfile identify the fault schedule the run
	// executes under; both are fingerprint components, so a chaos run
	// never resumes from a clean run's manifests or vice versa.
	FaultsSeed    int64
	FaultsProfile string
	// Workers bounds the pool executing independent nodes in parallel;
	// <= 0 means 2.
	Workers int
	// Obs receives convmeter_dag_* metrics and per-node "dag:<id>" spans.
	// Nil disables telemetry.
	Obs *obs.Obs
	// Faults supplies the node-crash schedule (Profile.NodeCrashes). Nil
	// injects nothing.
	Faults *faults.Injector
}

// ErrCrashed marks an Execute aborted by an injected process crash: the
// run died fail-stop at a node boundary or mid-node, committed manifests
// survive, everything else is lost. A caller that sees it should exit
// nonzero; a rerun over the same directory resumes.
var ErrCrashed = errors.New("dagrun: run killed by injected crash")

// node is the executor's per-node state. The def and edge slices are
// immutable after New; everything else is guarded by Runner.mu.
type node struct {
	def        Node
	deps       []*node
	dependents []*node

	remaining    int // unmet dependencies
	state        string
	attempt      int
	manifestHash string
	blame        string
	errMsg       string
	seconds      float64
	output       json.RawMessage
}

// Runner executes one DAG. Build with New, run with Execute (once);
// WriteJSON serves the live audit trail concurrently at any point.
type Runner struct {
	cfg   Config
	order []*node // deterministic topological order
	byID  map[string]*node

	stateGauges map[string]*obs.Gauge
	nodeSeconds map[string]*obs.Gauge
	resumedCtr  *obs.Counter
	failcloseP  *obs.Counter // reason="parse"
	failcloseF  *obs.Counter // reason="fingerprint"
	heartbeatG  *obs.Gauge

	mu         sync.Mutex
	started    bool
	resumed    int
	crashed    string // "node@point" of the first injected crash
	firstErr   error
	crashedErr error
}

// New validates the node set — unique file-safe ids, resolvable
// dependencies, no cycles — and returns a Runner in the all-pending
// state. The manifest directory is created if configured.
func New(cfg Config, nodes []Node) (*Runner, error) {
	if len(nodes) == 0 {
		return nil, errors.New("dagrun: empty node set")
	}
	r := &Runner{cfg: cfg, byID: make(map[string]*node, len(nodes))}
	for _, def := range nodes {
		if def.ID == "" {
			return nil, errors.New("dagrun: node with empty id")
		}
		if strings.ContainsAny(def.ID, "/\\") || def.ID == "." || def.ID == ".." {
			return nil, fmt.Errorf("dagrun: node id %q is not a valid manifest file name", def.ID)
		}
		if def.Run == nil {
			return nil, fmt.Errorf("dagrun: node %s has no Run", def.ID)
		}
		if _, dup := r.byID[def.ID]; dup {
			return nil, fmt.Errorf("dagrun: duplicate node id %s", def.ID)
		}
		r.byID[def.ID] = &node{def: def, state: StatePending}
	}
	for _, def := range nodes {
		n := r.byID[def.ID]
		seen := make(map[string]bool, len(def.Deps))
		for _, dep := range def.Deps {
			d, ok := r.byID[dep]
			if !ok {
				return nil, fmt.Errorf("dagrun: node %s depends on unknown node %s", def.ID, dep)
			}
			if dep == def.ID {
				return nil, fmt.Errorf("dagrun: node %s depends on itself", def.ID)
			}
			if seen[dep] {
				return nil, fmt.Errorf("dagrun: node %s lists dependency %s twice", def.ID, dep)
			}
			seen[dep] = true
			n.deps = append(n.deps, d)
			d.dependents = append(d.dependents, n)
			n.remaining++
		}
	}
	// Kahn's algorithm over the declared order: deterministic, and any
	// leftover node sits on a cycle.
	indeg := make(map[*node]int, len(nodes))
	var queue []*node
	for _, def := range nodes {
		n := r.byID[def.ID]
		indeg[n] = n.remaining
		if n.remaining == 0 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		r.order = append(r.order, n)
		for _, d := range n.dependents {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(r.order) != len(nodes) {
		for _, def := range nodes {
			if n := r.byID[def.ID]; indeg[n] > 0 {
				return nil, fmt.Errorf("dagrun: dependency cycle through node %s", def.ID)
			}
		}
	}
	if cfg.Dir != "" {
		if err := ensureDir(cfg.Dir); err != nil {
			return nil, err
		}
	}
	if o := cfg.Obs; o != nil {
		r.stateGauges = make(map[string]*obs.Gauge, len(States))
		for _, st := range States {
			r.stateGauges[st] = o.Gauge(obs.Label("convmeter_dag_nodes", "state", st),
				"DAG nodes by execution state")
		}
		r.nodeSeconds = make(map[string]*obs.Gauge, len(nodes))
		for _, def := range nodes {
			r.nodeSeconds[def.ID] = o.Gauge(obs.Label("convmeter_dag_node_seconds", "node", def.ID),
				"wall-clock of each DAG node's most recent execution")
		}
		r.resumedCtr = o.Counter("convmeter_dag_resumed_total",
			"DAG nodes served from a fingerprint-matching manifest instead of re-run")
		r.failcloseP = o.Counter(obs.Label("convmeter_dag_failclose_total", "reason", "corrupt"),
			"manifests rejected fail-close, forcing a re-run")
		r.failcloseF = o.Counter(obs.Label("convmeter_dag_failclose_total", "reason", "fingerprint"),
			"manifests rejected fail-close, forcing a re-run")
		r.heartbeatG = o.Gauge("convmeter_dag_heartbeat_seconds",
			"seconds into Execute at the most recent node completion; a stale value under a running DAG means the executor is wedged")
	}
	r.publishStates()
	return r, nil
}

// Execute runs the DAG to completion (or to the first failure/injected
// crash), returning the final audit report. It may be called once.
func (r *Runner) Execute() (*Report, error) {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return nil, errors.New("dagrun: Execute called twice")
	}
	r.started = true
	r.mu.Unlock()

	workers := r.cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	execT0 := time.Now()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var launch func(n *node)
	launch = func(n *node) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{} // bounded pool slot
			ok := r.runNode(n)
			<-sem
			r.heartbeatG.Set(time.Since(execT0).Seconds())
			if !ok {
				return
			}
			var ready []*node
			r.mu.Lock()
			if r.firstErr == nil && r.crashedErr == nil {
				for _, d := range n.dependents {
					d.remaining--
					if d.remaining == 0 && d.state == StatePending {
						ready = append(ready, d)
					}
				}
			}
			r.mu.Unlock()
			for _, d := range ready {
				launch(d)
			}
		}()
	}
	var roots []*node
	r.mu.Lock()
	for _, n := range r.order {
		if n.remaining == 0 {
			roots = append(roots, n)
		}
	}
	r.mu.Unlock()
	for _, n := range roots {
		launch(n)
	}
	wg.Wait()

	r.mu.Lock()
	for _, n := range r.order {
		if n.state != StatePending {
			continue
		}
		n.state = StateSkipped
		switch {
		case r.crashedErr != nil:
			n.blame = "lost: run crashed at " + r.crashed
		case r.firstErr != nil:
			n.blame = "skipped: upstream failure"
		}
	}
	err := r.firstErr
	if r.crashedErr != nil {
		err = r.crashedErr
	}
	r.mu.Unlock()
	r.publishStates()
	return r.Snapshot(), err
}

// runNode executes one node end to end: boundary crash check, manifest
// reuse (fail-close), the node's Run, mid-node crash check, manifest
// commit. Reports whether dependents may proceed.
func (r *Runner) runNode(n *node) bool {
	r.mu.Lock()
	aborted := r.firstErr != nil || r.crashedErr != nil
	if !aborted {
		n.state = StateRunning
	}
	inputs := make(map[string]json.RawMessage, len(n.deps))
	hashes := make(map[string]string, len(n.deps))
	for _, d := range n.deps {
		inputs[d.def.ID] = d.output
		hashes[d.def.ID] = d.manifestHash
	}
	r.mu.Unlock()
	if aborted {
		return false
	}
	r.publishStates()

	if r.cfg.Faults.NodeCrashAt(n.def.ID, faults.NodeCrashBoundary) {
		r.crash(n, faults.NodeCrashBoundary)
		return false
	}

	attempt := 1
	var fp string
	if r.cfg.Dir != "" {
		fp = manifest.Fingerprint(manifest.FingerprintInput{
			Code:          r.cfg.Code,
			Config:        n.def.Config,
			FaultsSeed:    r.cfg.FaultsSeed,
			FaultsProfile: r.cfg.FaultsProfile,
			Inputs:        hashes,
		})
		m, reason := loadManifest(r.cfg.Dir, n.def.ID)
		switch {
		case m != nil && m.Fingerprint == fp:
			r.mu.Lock()
			n.state = StateReused
			n.attempt = m.Attempt
			n.manifestHash = m.Hash
			n.output = m.Output
			r.resumed++
			r.mu.Unlock()
			r.resumedCtr.Inc()
			r.publishStates()
			return true
		case m != nil:
			// Well-formed but produced under different code, config,
			// inputs or fault schedule: stale. Never trusted.
			attempt = m.Attempt + 1
			r.failcloseF.Inc()
		case reason == reasonCorrupt:
			r.failcloseP.Inc()
		}
	}

	t0 := time.Now()
	sp := r.cfg.Obs.Start("dag:" + n.def.ID)
	out, err := n.def.Run(Inputs{outputs: inputs})
	sp.End()
	secs := time.Since(t0).Seconds()
	if g := r.nodeSeconds[n.def.ID]; g != nil {
		g.Set(secs)
	}
	if err != nil {
		r.fail(n, secs, err)
		return false
	}
	raw, err := json.Marshal(out)
	if err != nil {
		r.fail(n, secs, fmt.Errorf("marshal output: %w", err))
		return false
	}

	if r.cfg.Faults.NodeCrashAt(n.def.ID, faults.NodeCrashMid) {
		// The work is done but the process dies before the commit: the
		// output is lost, exactly like a real kill between compute and
		// rename. Resume must re-run this node.
		r.crash(n, faults.NodeCrashMid)
		return false
	}

	var mHash string
	if r.cfg.Dir != "" && !r.crashedNow() {
		m := &manifest.Manifest{
			Node:          n.def.ID,
			Fingerprint:   fp,
			Code:          r.cfg.Code,
			Config:        n.def.Config,
			FaultsSeed:    r.cfg.FaultsSeed,
			FaultsProfile: r.cfg.FaultsProfile,
			Inputs:        hashes,
			Attempt:       attempt,
			Output:        raw,
		}
		data, err := manifest.Seal(m)
		if err != nil {
			r.fail(n, secs, err)
			return false
		}
		if err := checkpoint.WriteFileAtomic(manifestPath(r.cfg.Dir, n.def.ID), data); err != nil {
			r.fail(n, secs, fmt.Errorf("commit manifest: %w", err))
			return false
		}
		mHash = m.Hash
	}

	r.mu.Lock()
	n.state = StateDone
	n.attempt = attempt
	n.manifestHash = mHash
	n.output = raw
	n.seconds = secs
	r.mu.Unlock()
	r.publishStates()
	return true
}

// crash records an injected process crash: the node (and the run) die
// fail-stop, nothing of the node is committed, and Execute will return
// ErrCrashed. The first crash wins blame.
func (r *Runner) crash(n *node, point string) {
	at := n.def.ID + "@" + point
	r.mu.Lock()
	n.state = StateFailed
	n.blame = "crash@" + point
	if r.crashedErr == nil {
		r.crashed = at
		r.crashedErr = fmt.Errorf("dagrun: node %s: %w", at, ErrCrashed)
	}
	r.mu.Unlock()
	r.publishStates()
}

// fail records a node failure; the first failure aborts scheduling.
func (r *Runner) fail(n *node, secs float64, err error) {
	wrapped := fmt.Errorf("dagrun: node %s: %w", n.def.ID, err)
	r.mu.Lock()
	n.state = StateFailed
	n.errMsg = err.Error()
	n.seconds = secs
	if r.firstErr == nil {
		r.firstErr = wrapped
	}
	r.mu.Unlock()
	r.publishStates()
}

// crashedNow reports whether an injected crash already fired — used to
// suppress commits racing with the process's death.
func (r *Runner) crashedNow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashedErr != nil
}

// publishStates mirrors the per-state node counts onto the
// convmeter_dag_nodes gauges.
func (r *Runner) publishStates() {
	if r.stateGauges == nil {
		return
	}
	counts := make(map[string]int, len(States))
	r.mu.Lock()
	for _, n := range r.order {
		counts[n.state]++
	}
	r.mu.Unlock()
	for _, st := range States {
		r.stateGauges[st].Set(float64(counts[st]))
	}
}

// Output returns the committed output of node id after Execute; ok is
// false for nodes that never completed.
func (r *Runner) Output(id string) (json.RawMessage, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.byID[id]
	if !ok || n.output == nil {
		return nil, false
	}
	return n.output, true
}
