package dagrun

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaV1 tags the DAG audit report served at /dag and returned by
// Execute.
const SchemaV1 = "convmeter/dag/v1"

// Node execution states as reported in the audit trail and mirrored onto
// the convmeter_dag_nodes gauges.
const (
	StatePending = "pending" // waiting on dependencies
	StateRunning = "running" // a worker is executing Run
	StateDone    = "done"    // Run completed and the manifest committed
	StateReused  = "reused"  // served from a fingerprint-matching manifest
	StateFailed  = "failed"  // Run errored or an injected crash fired here
	StateSkipped = "skipped" // never started: upstream failure or crash
)

// States lists every node state, in lifecycle order.
var States = []string{StatePending, StateRunning, StateDone, StateReused, StateFailed, StateSkipped}

// NodeStatus is one node's row in the audit trail.
type NodeStatus struct {
	ID    string   `json:"id"`
	Deps  []string `json:"deps,omitempty"`
	State string   `json:"state"`
	// Attempt counts executions across the run directory's lifetime,
	// resumes included; 0 until the node first runs or is reused.
	Attempt int `json:"attempt"`
	// Manifest is the content hash of the node's committed manifest;
	// empty for nodes without one (not yet done, or durability disabled).
	Manifest string `json:"manifest,omitempty"`
	// Blame explains why a node did not complete: "crash@boundary",
	// "crash@mid", "skipped: upstream failure", "lost: run crashed at
	// <node@point>".
	Blame string `json:"blame,omitempty"`
	// Error is the node's own failure, when Run returned one.
	Error string `json:"error,omitempty"`
	// Seconds is the wall-clock of the node's most recent execution;
	// zero for reused nodes (nothing ran).
	Seconds float64 `json:"seconds"`
}

// Report is the queryable audit trail of one DAG run.
type Report struct {
	Schema string `json:"schema"`
	// Nodes lists every node in deterministic topological order.
	Nodes []NodeStatus `json:"nodes"`
	// Resumed counts nodes served from manifests instead of re-run.
	Resumed int `json:"resumed"`
	// Crashed names the first injected crash as "node@point", empty when
	// none fired.
	Crashed string `json:"crashed,omitempty"`
}

// Node returns the status row for id, or nil.
func (rep *Report) Node(id string) *NodeStatus {
	if rep == nil {
		return nil
	}
	for i := range rep.Nodes {
		if rep.Nodes[i].ID == id {
			return &rep.Nodes[i]
		}
	}
	return nil
}

// Snapshot captures the current audit trail. Safe to call concurrently
// with Execute — the ops server polls it live — and on a nil Runner,
// which yields an empty report.
func (r *Runner) Snapshot() *Report {
	rep := &Report{Schema: SchemaV1}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep.Resumed = r.resumed
	rep.Crashed = r.crashed
	for _, n := range r.order {
		st := NodeStatus{
			ID:       n.def.ID,
			State:    n.state,
			Attempt:  n.attempt,
			Manifest: n.manifestHash,
			Blame:    n.blame,
			Error:    n.errMsg,
			Seconds:  n.seconds,
		}
		if len(n.def.Deps) > 0 {
			st.Deps = append(st.Deps, n.def.Deps...)
		}
		rep.Nodes = append(rep.Nodes, st)
	}
	return rep
}

// DecodeOutput unmarshals a committed node output (from Output) into v.
func DecodeOutput(raw json.RawMessage, v any) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("dagrun: decode output: %w", err)
	}
	return nil
}

// WriteJSON writes the current audit trail as indented JSON — the /dag
// endpoint's body. Nil-safe like the other ops sources.
func (r *Runner) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", " ")
	if err != nil {
		return fmt.Errorf("dagrun: marshal report: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
