// Package exec is a real execution engine for ConvMeter graphs: float32
// tensor kernels for every graph operation (convolution with
// groups/stride/padding/dilation, pooling, linear and token-linear
// layers, batch/layer normalisation, activations, attention, residual and
// concat plumbing), plus a graph executor with deterministic weight
// initialisation.
//
// The paper's measurement substrate is PyTorch actually *running* the
// networks; exec is this repository's equivalent. It serves three roles:
//
//  1. semantic validation — the kernels are unit-tested against
//     hand-computed cases, so the graph definitions are known to be
//     executable networks, not just FLOPs bookkeeping;
//  2. a *real* measurement backend — internal/hwreal times these kernels
//     on the host CPU and feeds genuine wall-clock samples into the
//     unchanged fitting pipeline (see the "gocpu" device);
//  3. an oracle for shape/accounting invariants (output shapes of real
//     execution must match static inference exactly).
//
// Kernels favour clarity with reasonable cache behaviour; the parallel
// kernels (convolution, linear, attention) split flattened index spaces
// over a persistent worker pool and allocate nothing per invocation —
// they are declared hot-path roots in lint.config, and the hotpath
// analyzer plus testing.AllocsPerRun enforce the discipline.
package exec

import (
	"fmt"
	"math"

	"convmeter/internal/graph"
)

// Tensor is a batched NCHW float32 tensor.
type Tensor struct {
	Batch int
	Shape graph.Shape
	Data  []float32 // len == Batch * Shape.Elems()
}

// NewTensor allocates a zero tensor.
func NewTensor(batch int, shape graph.Shape) *Tensor {
	if batch <= 0 || !shape.Valid() {
		panic(fmt.Sprintf("exec: invalid tensor %d x %v", batch, shape))
	}
	return &Tensor{Batch: batch, Shape: shape, Data: make([]float32, int64(batch)*shape.Elems())}
}

// At returns the element (b, c, h, w).
func (t *Tensor) At(b, c, h, w int) float32 {
	return t.Data[t.index(b, c, h, w)]
}

// Set assigns the element (b, c, h, w).
func (t *Tensor) Set(b, c, h, w int, v float32) {
	t.Data[t.index(b, c, h, w)] = v
}

func (t *Tensor) index(b, c, h, w int) int {
	s := t.Shape
	return ((b*s.C+c)*s.H+h)*s.W + w
}

// image returns the slice holding one image (batch element).
func (t *Tensor) image(b int) []float32 {
	n := int(t.Shape.Elems())
	return t.Data[b*n : (b+1)*n]
}

// channel returns the slice holding one image's channel plane.
func (t *Tensor) channel(b, c int) []float32 {
	hw := t.Shape.H * t.Shape.W
	img := t.image(b)
	return img[c*hw : (c+1)*hw]
}

// mean returns the arithmetic mean of the data (test helper and layer
// norm building block).
func mean32(v []float32) float32 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return float32(s / float64(len(v)))
}

// variance32 returns the population variance.
func variance32(v []float32) float32 {
	if len(v) == 0 {
		return 0
	}
	mu := float64(mean32(v))
	var s float64
	for _, x := range v {
		d := float64(x) - mu
		s += d * d
	}
	return float32(s / float64(len(v)))
}

// applyAct evaluates an activation function on a scalar.
func applyAct(fn graph.ActFunc, x float32) float32 {
	switch fn {
	case graph.ReLU:
		if x < 0 {
			return 0
		}
		return x
	case graph.ReLU6:
		if x < 0 {
			return 0
		}
		if x > 6 {
			return 6
		}
		return x
	case graph.Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(x))))
	case graph.SiLU:
		return x * float32(1/(1+math.Exp(-float64(x))))
	case graph.HardSigmoid:
		v := x/6 + 0.5
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	case graph.HardSwish:
		return x * applyAct(graph.HardSigmoid, x)
	case graph.Tanh:
		return float32(math.Tanh(float64(x)))
	case graph.GELU:
		// tanh approximation of GELU.
		const c = 0.7978845608028654 // sqrt(2/pi)
		x64 := float64(x)
		return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
	case graph.Softmax:
		// Elementwise placeholder — the real softmax lives in the
		// attention kernel; standalone softmax activations in the zoo are
		// absent, but keep the function total.
		return x
	default:
		panic(fmt.Sprintf("exec: unknown activation %q", fn))
	}
}
