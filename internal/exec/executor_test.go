package exec

import (
	"math"
	"testing"

	"convmeter/internal/graph"
	"convmeter/internal/models"
)

// runModel executes a zoo model at a small image size and returns the
// output tensor.
func runModel(t *testing.T, name string, img, batch int) *Tensor {
	t.Helper()
	g, err := models.Build(name, img)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(batch)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkFinite(t *testing.T, name string, out *Tensor) {
	t.Helper()
	for i, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("%s: non-finite output at %d: %g", name, i, v)
		}
	}
}

func TestZooModelsActuallyExecute(t *testing.T) {
	// Every architecture family must run end to end — proving the graphs
	// are real executable networks, not just FLOPs bookkeeping. Small
	// images keep the naive kernels fast.
	cases := []struct {
		name string
		img  int
	}{
		{"resnet18", 32},
		{"resnet50", 32},
		{"mobilenet_v2", 32},
		{"mobilenet_v3_small", 32},
		{"squeezenet1_1", 48},
		{"efficientnet_b0", 32},
		{"regnet_y_400mf", 32},
		{"densenet121", 32},
		{"alexnet", 64},
		{"vgg11", 32},
		{"vit_b_32", 64},
		{"shufflenet_v2_x1_0", 32}, // slice + shuffle ops
		{"mnasnet1_0", 32},
		{"convnext_tiny", 32}, // spatial layer norm + layer scale
	}
	for _, c := range cases {
		out := runModel(t, c.name, c.img, 2)
		if out.Shape != (graph.Shape{C: models.NumClasses, H: 1, W: 1}) {
			t.Fatalf("%s: output shape %v", c.name, out.Shape)
		}
		if out.Batch != 2 {
			t.Fatalf("%s: batch %d", c.name, out.Batch)
		}
		checkFinite(t, c.name, out)
	}
}

func TestExecutionShapeMatchesStaticInference(t *testing.T) {
	// The executed output of every node range endpoint must equal the
	// statically inferred shape — exercised indirectly through the final
	// output above; here we check an interior branchy case explicitly.
	g, err := models.BuildBlock("MBConv", 14)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	staticOut, err := g.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape != staticOut {
		t.Fatalf("executed %v vs static %v", out.Shape, staticOut)
	}
	checkFinite(t, "MBConv", out)
}

func TestExecutorDeterministic(t *testing.T) {
	a := runModel(t, "resnet18", 32, 1)
	b := runModel(t, "resnet18", 32, 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("output differs at %d across identical seeds", i)
		}
	}
}

func TestExecutorSeedChangesWeights(t *testing.T) {
	g, err := models.Build("resnet18", 32)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewExecutor(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e1.RandomInput(1)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := e1.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := e2.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range o1.Data {
		if o1.Data[i] != o2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestExecutorBatchConsistency(t *testing.T) {
	// Running a batch of 2 identical images must produce two identical
	// outputs (no cross-batch leakage in any kernel).
	g, err := models.Build("mobilenet_v2", 32)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	single, err := e.RandomInput(1)
	if err != nil {
		t.Fatal(err)
	}
	double := NewTensor(2, single.Shape)
	copy(double.image(0), single.image(0))
	copy(double.image(1), single.image(0))
	out, err := e.Run(double)
	if err != nil {
		t.Fatal(err)
	}
	n := int(out.Shape.Elems())
	for i := 0; i < n; i++ {
		if out.Data[i] != out.Data[n+i] {
			t.Fatalf("batch elements diverged at %d", i)
		}
	}
	// And they must match the single-image run exactly.
	sOut, err := e.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out.Data[i] != sOut.Data[i] {
			t.Fatalf("batched result differs from single run at %d", i)
		}
	}
}

func TestExecutorRejectsBadInput(t *testing.T) {
	g, err := models.Build("resnet18", 32)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrong := NewTensor(1, graph.Shape{C: 3, H: 64, W: 64})
	if _, err := e.Run(wrong); err == nil {
		t.Fatal("expected input-shape error")
	}
}

func TestExecutorRejectsInvalidGraph(t *testing.T) {
	g, err := models.Build("resnet18", 32)
	if err != nil {
		t.Fatal(err)
	}
	g.Nodes[1].Out.C++
	if _, err := NewExecutor(g, 1); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestShuffleChannelsPermutation(t *testing.T) {
	// Build a minimal graph exercising slice + shuffle and verify the
	// exact channel permutation against PyTorch's channel_shuffle rule.
	b, x := graph.NewBuilder("shuf", graph.Shape{C: 4, H: 1, W: 1})
	x = b.ShuffleChannels(x, "shuffle", 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor(1, graph.Shape{C: 4, H: 1, W: 1})
	copy(in.Data, []float32{0, 1, 2, 3})
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// groups=2, cpg=2: channel gi*2+k → k*2+gi: [0,1,2,3] → [0,2,1,3].
	want := []float32{0, 2, 1, 3}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("shuffle output %v, want %v", out.Data, want)
		}
	}
}

func TestSliceChannelsExtraction(t *testing.T) {
	b, x := graph.NewBuilder("slice", graph.Shape{C: 4, H: 1, W: 2})
	x = b.SliceChannels(x, "half", 2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor(1, graph.Shape{C: 4, H: 1, W: 2})
	copy(in.Data, []float32{0, 1, 2, 3, 4, 5, 6, 7})
	out, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 5, 6, 7}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("slice output %v, want %v", out.Data, want)
		}
	}
}

func TestNewTensorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTensor(0, graph.Shape{C: 1, H: 1, W: 1})
}
