package exec

import (
	"math"
	"testing"

	"convmeter/internal/graph"
)

func almost(a, b float32) bool {
	return math.Abs(float64(a-b)) <= 1e-4*math.Max(1, math.Abs(float64(b)))
}

func TestConv2dIdentityKernel(t *testing.T) {
	// A 1x1 convolution with weight 1 must copy the input.
	in := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	op := &graph.Conv2dOp{InC: 1, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	conv2d(in, op, []float32{1}, nil, out)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv mismatch at %d: %g", i, out.Data[i])
		}
	}
}

func TestConv2dHandComputed(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, stride 1, no pad → 2x2 sums.
	in := NewTensor(1, graph.Shape{C: 1, H: 3, W: 3})
	copy(in.Data, []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	op := &graph.Conv2dOp{InC: 1, OutC: 1, KH: 2, KW: 2, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	conv2d(in, op, []float32{1, 1, 1, 1}, []float32{0.5}, out)
	want := []float32{1 + 2 + 4 + 5 + 0.5, 2 + 3 + 5 + 6 + 0.5, 4 + 5 + 7 + 8 + 0.5, 5 + 6 + 8 + 9 + 0.5}
	for i := range want {
		if !almost(out.Data[i], want[i]) {
			t.Fatalf("conv out[%d] = %g, want %g", i, out.Data[i], want[i])
		}
	}
}

func TestConv2dPaddingAndStride(t *testing.T) {
	// 2x2 input, 3x3 kernel of ones, pad 1, stride 2 → 1x1 output = sum.
	in := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	op := &graph.Conv2dOp{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, DilationH: 1, DilationW: 1, Groups: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 1, W: 1})
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	conv2d(in, op, w, nil, out)
	if !almost(out.Data[0], 10) {
		t.Fatalf("padded conv = %g, want 10", out.Data[0])
	}
}

func TestConv2dGrouped(t *testing.T) {
	// Depthwise 2-channel conv: each channel scaled independently.
	in := NewTensor(1, graph.Shape{C: 2, H: 1, W: 1})
	copy(in.Data, []float32{3, 5})
	op := &graph.Conv2dOp{InC: 2, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 2}
	out := NewTensor(1, graph.Shape{C: 2, H: 1, W: 1})
	conv2d(in, op, []float32{2, 10}, nil, out)
	if out.Data[0] != 6 || out.Data[1] != 50 {
		t.Fatalf("grouped conv = %v", out.Data)
	}
}

func TestConv2dDilated(t *testing.T) {
	// Dilation 2 with a 2x2 kernel of ones samples corners of a 3x3 grid.
	in := NewTensor(1, graph.Shape{C: 1, H: 3, W: 3})
	copy(in.Data, []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	op := &graph.Conv2dOp{InC: 1, OutC: 1, KH: 2, KW: 2, StrideH: 1, StrideW: 1, DilationH: 2, DilationW: 2, Groups: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 1, W: 1})
	conv2d(in, op, []float32{1, 1, 1, 1}, nil, out)
	if !almost(out.Data[0], 1+3+7+9) {
		t.Fatalf("dilated conv = %g, want 20", out.Data[0])
	}
}

func TestConv2dAsymmetricKernel(t *testing.T) {
	// A 1x3 kernel of ones with pad (0,1): row sums with zero padding —
	// the Inception factorised-convolution shape.
	in := NewTensor(1, graph.Shape{C: 1, H: 2, W: 3})
	copy(in.Data, []float32{
		1, 2, 3,
		4, 5, 6,
	})
	op := &graph.Conv2dOp{InC: 1, OutC: 1, KH: 1, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 1, DilationH: 1, DilationW: 1, Groups: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 2, W: 3})
	conv2d(in, op, []float32{1, 1, 1}, nil, out)
	want := []float32{
		0 + 1 + 2, 1 + 2 + 3, 2 + 3 + 0,
		0 + 4 + 5, 4 + 5 + 6, 5 + 6 + 0,
	}
	for i := range want {
		if !almost(out.Data[i], want[i]) {
			t.Fatalf("asymmetric conv out = %v, want %v", out.Data, want)
		}
	}
}

func TestConv2dStridedAsymmetric(t *testing.T) {
	// Different strides per axis: 1x1 kernel, stride (2,1).
	in := NewTensor(1, graph.Shape{C: 1, H: 4, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	op := &graph.Conv2dOp{InC: 1, OutC: 1, KH: 1, KW: 1, StrideH: 2, StrideW: 1, DilationH: 1, DilationW: 1, Groups: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	conv2d(in, op, []float32{1}, nil, out)
	want := []float32{1, 2, 5, 6}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("strided conv out = %v, want %v", out.Data, want)
		}
	}
}

func TestLinearKernel(t *testing.T) {
	in := NewTensor(2, graph.Shape{C: 3, H: 1, W: 1})
	copy(in.Data, []float32{1, 2, 3 /* batch 1 */, 4, 5, 6 /* batch 2 */})
	op := &graph.LinearOp{In: 3, Out: 2, Bias: true}
	// W = [[1,0,0],[0,1,1]], b = [10, 20]
	w := []float32{1, 0, 0, 0, 1, 1}
	b := []float32{10, 20}
	out := NewTensor(2, graph.Shape{C: 2, H: 1, W: 1})
	linear(in, op, w, b, out)
	want := []float32{11, 25, 14, 31}
	for i := range want {
		if !almost(out.Data[i], want[i]) {
			t.Fatalf("linear out = %v, want %v", out.Data, want)
		}
	}
}

func TestTokenLinearKernel(t *testing.T) {
	// 2 tokens, dim 2 → out dim 1 with W=[1,1]: per-token sums.
	in := NewTensor(1, graph.Shape{C: 2, H: 2, W: 1})
	// layout: channel-major — c0: tokens [1, 2]; c1: tokens [3, 4]
	copy(in.Data, []float32{1, 2, 3, 4})
	op := &graph.TokenLinearOp{In: 2, Out: 1}
	out := NewTensor(1, graph.Shape{C: 1, H: 2, W: 1})
	tokenLinear(in, op, []float32{1, 1}, nil, out)
	if !almost(out.Data[0], 4) || !almost(out.Data[1], 6) {
		t.Fatalf("token linear = %v, want [4 6]", out.Data)
	}
}

func TestBatchNormKernel(t *testing.T) {
	in := NewTensor(1, graph.Shape{C: 2, H: 1, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	out := NewTensor(1, in.Shape)
	batchNorm(in, []float32{2, 0.5}, []float32{1, -1}, out)
	want := []float32{3, 5, 0.5, 1}
	for i := range want {
		if !almost(out.Data[i], want[i]) {
			t.Fatalf("bn out = %v, want %v", out.Data, want)
		}
	}
}

func TestLayerNormKernel(t *testing.T) {
	// One token with values [1, 3]: mean 2, var 1 → normalised [-1, 1].
	in := NewTensor(1, graph.Shape{C: 2, H: 1, W: 1})
	copy(in.Data, []float32{1, 3})
	out := NewTensor(1, in.Shape)
	layerNorm(in, []float32{1, 1}, []float32{0, 0}, out)
	if !almost(out.Data[0], -1) || !almost(out.Data[1], 1) {
		t.Fatalf("ln out = %v, want [-1 1]", out.Data)
	}
}

func TestActivationNumerics(t *testing.T) {
	cases := []struct {
		fn   graph.ActFunc
		x    float32
		want float32
	}{
		{graph.ReLU, -2, 0},
		{graph.ReLU, 2, 2},
		{graph.ReLU6, 7, 6},
		{graph.Sigmoid, 0, 0.5},
		{graph.SiLU, 0, 0},
		{graph.HardSigmoid, 3, 1},
		{graph.HardSigmoid, -3, 0},
		{graph.HardSwish, 3, 3},
		{graph.Tanh, 0, 0},
		{graph.GELU, 0, 0},
	}
	for _, c := range cases {
		if got := applyAct(c.fn, c.x); !almost(got, c.want) {
			t.Errorf("%s(%g) = %g, want %g", c.fn, c.x, got, c.want)
		}
	}
	// GELU(x) ≈ x for large positive x, ≈ 0 for large negative.
	if g := applyAct(graph.GELU, 10); !almost(g, 10) {
		t.Errorf("GELU(10) = %g", g)
	}
	if g := applyAct(graph.GELU, -10); math.Abs(float64(g)) > 1e-3 {
		t.Errorf("GELU(-10) = %g", g)
	}
}

func TestMaxAndAvgPool(t *testing.T) {
	in := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	mp := &graph.Pool2dOp{PoolKind: graph.MaxPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	out := NewTensor(1, graph.Shape{C: 1, H: 1, W: 1})
	pool2d(in, mp, out)
	if out.Data[0] != 4 {
		t.Fatalf("maxpool = %g", out.Data[0])
	}
	ap := &graph.Pool2dOp{PoolKind: graph.AvgPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	pool2d(in, ap, out)
	if !almost(out.Data[0], 2.5) {
		t.Fatalf("avgpool = %g", out.Data[0])
	}
}

func TestAdaptiveAvgPoolGlobal(t *testing.T) {
	in := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	out := NewTensor(1, graph.Shape{C: 1, H: 1, W: 1})
	adaptiveAvgPool(in, out)
	if !almost(out.Data[0], 2.5) {
		t.Fatalf("global pool = %g", out.Data[0])
	}
}

func TestAdaptiveAvgPoolUpsample(t *testing.T) {
	// 1x1 → 2x2 replication (the AlexNet-at-small-image case).
	in := NewTensor(1, graph.Shape{C: 1, H: 1, W: 1})
	in.Data[0] = 7
	out := NewTensor(1, graph.Shape{C: 1, H: 2, W: 2})
	adaptiveAvgPool(in, out)
	for _, v := range out.Data {
		if v != 7 {
			t.Fatalf("upsampled pool = %v", out.Data)
		}
	}
}

func TestAttentionUniformValues(t *testing.T) {
	// If all keys are equal, attention weights are uniform and the output
	// equals the mean of the values.
	dim, T := 2, 3
	in := NewTensor(1, graph.Shape{C: 3 * dim, H: T, W: 1})
	// q arbitrary, k identical per token, v = token index.
	for d := 0; d < dim; d++ {
		for tok := 0; tok < T; tok++ {
			in.Set(0, d, tok, 0, float32(d+1))       // q
			in.Set(0, dim+d, tok, 0, 1)              // k constant
			in.Set(0, 2*dim+d, tok, 0, float32(tok)) // v
		}
	}
	op := &graph.AttentionCoreOp{Dim: dim, Heads: 1}
	out := NewTensor(1, graph.Shape{C: dim, H: T, W: 1})
	attentionCore(in, op, out)
	wantMean := float32(0+1+2) / 3
	for d := 0; d < dim; d++ {
		for tok := 0; tok < T; tok++ {
			if !almost(out.At(0, d, tok, 0), wantMean) {
				t.Fatalf("attention out[%d,%d] = %g, want %g", d, tok, out.At(0, d, tok, 0), wantMean)
			}
		}
	}
}

func TestAttentionSoftmaxSelectivity(t *testing.T) {
	// With one key aligned to the query and others orthogonal, the output
	// must lean strongly toward the aligned token's value.
	dim, T := 2, 2
	in := NewTensor(1, graph.Shape{C: 3 * dim, H: T, W: 1})
	// Query for token 0 = [10, 0]; keys: token0=[10,0], token1=[-10,0].
	in.Set(0, 0, 0, 0, 10)
	in.Set(0, dim, 0, 0, 10)
	in.Set(0, dim, 1, 0, -10)
	// Values: token0 = 1, token1 = -1 in channel 0.
	in.Set(0, 2*dim, 0, 0, 1)
	in.Set(0, 2*dim, 1, 0, -1)
	op := &graph.AttentionCoreOp{Dim: dim, Heads: 1}
	out := NewTensor(1, graph.Shape{C: dim, H: T, W: 1})
	attentionCore(in, op, out)
	if out.At(0, 0, 0, 0) < 0.99 {
		t.Fatalf("attention not selective: %g", out.At(0, 0, 0, 0))
	}
}

func TestToTokensLayout(t *testing.T) {
	in := NewTensor(1, graph.Shape{C: 2, H: 1, W: 2}) // 2 patches, dim 2
	copy(in.Data, []float32{1, 2, 3, 4})              // c0: [1,2], c1: [3,4]
	op := &graph.ToTokensOp{Dim: 2, Tokens: 3}
	pos := make([]float32, 3*2) // zero positions
	cls := []float32{9, 8}
	out := NewTensor(1, graph.Shape{C: 2, H: 3, W: 1})
	toTokens(in, op, cls, pos, out)
	// token 0 = class token; tokens 1,2 = patches.
	if out.At(0, 0, 0, 0) != 9 || out.At(0, 1, 0, 0) != 8 {
		t.Fatal("class token misplaced")
	}
	if out.At(0, 0, 1, 0) != 1 || out.At(0, 0, 2, 0) != 2 {
		t.Fatal("patch channel 0 misplaced")
	}
	if out.At(0, 1, 1, 0) != 3 || out.At(0, 1, 2, 0) != 4 {
		t.Fatal("patch channel 1 misplaced")
	}
}
