package exec

import (
	"math"
	"sync"

	"convmeter/internal/graph"
)

// The parallel kernels below split their work over a flattened index
// space (batch × output-channel, batch × head, …) and hand it to the
// persistent worker pool via a pooled task struct — see pool.go. Every
// item writes a disjoint set of output elements, so scheduling cannot
// change the numerics, and the per-invocation allocation count is zero.

// convTask is one conv2d invocation; item i enumerates the flattened
// (batch, out-channel) space.
type convTask struct {
	in, out        *Tensor
	op             *graph.Conv2dOp
	weight, bias   []float32
	icPerG, ocPerG int
	kArea          int
}

var convTaskPool = sync.Pool{New: func() any { return new(convTask) }}

func (t *convTask) run(i int, _ *kernelScratch) {
	b, oc := i/t.op.OutC, i%t.op.OutC
	in, out, op := t.in, t.out, t.op
	g := oc / t.ocPerG
	icBase := g * t.icPerG
	wBase := oc * t.icPerG * t.kArea
	outPlane := out.channel(b, oc)
	var bv float32
	if t.bias != nil {
		bv = t.bias[oc]
	}
	for oh := 0; oh < out.Shape.H; oh++ {
		for ow := 0; ow < out.Shape.W; ow++ {
			acc := bv
			for ic := 0; ic < t.icPerG; ic++ {
				inPlane := in.channel(b, icBase+ic)
				wRow := t.weight[wBase+ic*t.kArea:]
				for kh := 0; kh < op.KH; kh++ {
					ih := oh*op.StrideH - op.PadH + kh*op.DilationH
					if ih < 0 || ih >= in.Shape.H {
						continue
					}
					rowOff := ih * in.Shape.W
					kOff := kh * op.KW
					for kw := 0; kw < op.KW; kw++ {
						iw := ow*op.StrideW - op.PadW + kw*op.DilationW
						if iw < 0 || iw >= in.Shape.W {
							continue
						}
						acc += inPlane[rowOff+iw] * wRow[kOff+kw]
					}
				}
			}
			outPlane[oh*out.Shape.W+ow] = acc
		}
	}
}

// conv2d computes a grouped, strided, padded, dilated 2-D convolution.
// Weight layout: [outC][inC/groups][KH][KW]; bias may be nil.
func conv2d(in *Tensor, op *graph.Conv2dOp, weight, bias []float32, out *Tensor) {
	t := convTaskPool.Get().(*convTask)
	*t = convTask{
		in: in, out: out, op: op, weight: weight, bias: bias,
		icPerG: op.InC / op.Groups, ocPerG: op.OutC / op.Groups,
		kArea: op.KH * op.KW,
	}
	parallelRun(t, in.Batch*op.OutC)
	*t = convTask{}
	convTaskPool.Put(t)
}

// linearTask is one linear invocation; item i enumerates the flattened
// (batch, output) space.
type linearTask struct {
	in, out      *Tensor
	op           *graph.LinearOp
	weight, bias []float32
}

var linearTaskPool = sync.Pool{New: func() any { return new(linearTask) }}

func (t *linearTask) run(i int, _ *kernelScratch) {
	b, o := i/t.op.Out, i%t.op.Out
	x := t.in.image(b)
	row := t.weight[o*t.op.In : (o+1)*t.op.In]
	acc := float32(0)
	if t.bias != nil {
		acc = t.bias[o]
	}
	for k, v := range x {
		acc += row[k] * v
	}
	t.out.image(b)[o] = acc
}

// linear computes out = W·flatten(in) + b per batch element.
// Weight layout: [out][in].
func linear(in *Tensor, op *graph.LinearOp, weight, bias []float32, out *Tensor) {
	t := linearTaskPool.Get().(*linearTask)
	*t = linearTask{in: in, out: out, op: op, weight: weight, bias: bias}
	parallelRun(t, in.Batch*op.Out)
	*t = linearTask{}
	linearTaskPool.Put(t)
}

// tokenLinearTask is one tokenLinear invocation; item i enumerates the
// flattened (batch, output) space, each item covering every token.
type tokenLinearTask struct {
	in, out      *Tensor
	op           *graph.TokenLinearOp
	weight, bias []float32
}

var tokenLinearTaskPool = sync.Pool{New: func() any { return new(tokenLinearTask) }}

func (t *tokenLinearTask) run(i int, _ *kernelScratch) {
	b, o := i/t.op.Out, i%t.op.Out
	T := t.in.Shape.H
	row := t.weight[o*t.op.In : (o+1)*t.op.In]
	var bv float32
	if t.bias != nil {
		bv = t.bias[o]
	}
	for tok := 0; tok < T; tok++ {
		acc := bv
		for k := 0; k < t.op.In; k++ {
			acc += row[k] * t.in.At(b, k, tok, 0)
		}
		t.out.Set(b, o, tok, 0, acc)
	}
}

// tokenLinear applies a linear layer independently per token of a C×T×1
// sequence. Weight layout: [out][in].
func tokenLinear(in *Tensor, op *graph.TokenLinearOp, weight, bias []float32, out *Tensor) {
	t := tokenLinearTaskPool.Get().(*tokenLinearTask)
	*t = tokenLinearTask{in: in, out: out, op: op, weight: weight, bias: bias}
	parallelRun(t, in.Batch*op.Out)
	*t = tokenLinearTask{}
	tokenLinearTaskPool.Put(t)
}

// batchNorm applies the inference-time affine transform per channel.
func batchNorm(in *Tensor, scale, shift []float32, out *Tensor) {
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			s, sh := scale[c], shift[c]
			src := in.channel(b, c)
			dst := out.channel(b, c)
			for i, v := range src {
				dst[i] = v*s + sh
			}
		}
	}
}

// layerNorm normalises each token across the embedding dimension. The
// mean/variance passes accumulate in float64 in channel order — the
// exact arithmetic of mean32/variance32 over a gathered buffer, without
// gathering one.
func layerNorm(in *Tensor, scale, shift []float32, out *Tensor) {
	const eps = 1e-5
	C := in.Shape.C
	for b := 0; b < in.Batch; b++ {
		for t := 0; t < in.Shape.H; t++ {
			for w := 0; w < in.Shape.W; w++ {
				var s float64
				for c := 0; c < C; c++ {
					s += float64(in.At(b, c, t, w))
				}
				mu := float32(s / float64(C))
				mu64 := float64(mu)
				var sv float64
				for c := 0; c < C; c++ {
					d := float64(in.At(b, c, t, w)) - mu64
					sv += d * d
				}
				va := float32(sv / float64(C))
				inv := float32(1 / math.Sqrt(float64(va)+eps))
				for c := 0; c < C; c++ {
					out.Set(b, c, t, w, (in.At(b, c, t, w)-mu)*inv*scale[c]+shift[c])
				}
			}
		}
	}
}

// activation applies fn elementwise.
func activation(in *Tensor, fn graph.ActFunc, out *Tensor) {
	for i, v := range in.Data {
		out.Data[i] = applyAct(fn, v)
	}
}

// pool2d computes max or average pooling.
func pool2d(in *Tensor, op *graph.Pool2dOp, out *Tensor) {
	kArea := float32(op.KH * op.KW)
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			src := in.channel(b, c)
			dst := out.channel(b, c)
			for oh := 0; oh < out.Shape.H; oh++ {
				for ow := 0; ow < out.Shape.W; ow++ {
					var acc float32
					if op.PoolKind == graph.MaxPool {
						acc = float32(math.Inf(-1))
					}
					for kh := 0; kh < op.KH; kh++ {
						ih := oh*op.StrideH - op.PadH + kh
						if ih < 0 || ih >= in.Shape.H {
							continue
						}
						for kw := 0; kw < op.KW; kw++ {
							iw := ow*op.StrideW - op.PadW + kw
							if iw < 0 || iw >= in.Shape.W {
								continue
							}
							v := src[ih*in.Shape.W+iw]
							if op.PoolKind == graph.MaxPool {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
						}
					}
					if op.PoolKind == graph.AvgPool {
						acc /= kArea // count_include_pad, PyTorch default
					}
					dst[oh*out.Shape.W+ow] = acc
				}
			}
		}
	}
}

// adaptiveAvgPool pools (or replicates) to a fixed output resolution
// using PyTorch's region rule: [floor(i·H/out), ceil((i+1)·H/out)).
func adaptiveAvgPool(in *Tensor, out *Tensor) {
	inH, inW := in.Shape.H, in.Shape.W
	outH, outW := out.Shape.H, out.Shape.W
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			src := in.channel(b, c)
			dst := out.channel(b, c)
			for oh := 0; oh < outH; oh++ {
				h0 := oh * inH / outH
				h1 := ((oh+1)*inH + outH - 1) / outH
				for ow := 0; ow < outW; ow++ {
					w0 := ow * inW / outW
					w1 := ((ow+1)*inW + outW - 1) / outW
					var acc float32
					for h := h0; h < h1; h++ {
						for w := w0; w < w1; w++ {
							acc += src[h*inW+w]
						}
					}
					dst[oh*outW+ow] = acc / float32((h1-h0)*(w1-w0))
				}
			}
		}
	}
}

// attnTask is one attentionCore invocation; item i enumerates the
// flattened (batch, head) space. The softmax scores live in the
// worker's scratch buffer.
type attnTask struct {
	in, out *Tensor
	op      *graph.AttentionCoreOp
	dh      int
	invSqrt float32
}

var attnTaskPool = sync.Pool{New: func() any { return new(attnTask) }}

func (t *attnTask) run(i int, sc *kernelScratch) {
	b, h := i/t.op.Heads, i%t.op.Heads
	in, out, op := t.in, t.out, t.op
	T := in.Shape.H
	scores := sc.floats(T)
	base := h * t.dh
	for q := 0; q < T; q++ {
		// scores = softmax(q_i · k_j / sqrt(dh))
		maxS := float32(math.Inf(-1))
		for j := 0; j < T; j++ {
			var s float32
			for d := 0; d < t.dh; d++ {
				qv := in.At(b, base+d, q, 0)
				kv := in.At(b, op.Dim+base+d, j, 0)
				s += qv * kv
			}
			s *= t.invSqrt
			scores[j] = s
			if s > maxS {
				maxS = s
			}
		}
		var sum float32
		for j := 0; j < T; j++ {
			scores[j] = float32(math.Exp(float64(scores[j] - maxS)))
			sum += scores[j]
		}
		for j := 0; j < T; j++ {
			scores[j] /= sum
		}
		for d := 0; d < t.dh; d++ {
			var acc float32
			for j := 0; j < T; j++ {
				acc += scores[j] * in.At(b, 2*op.Dim+base+d, j, 0)
			}
			out.Set(b, base+d, q, 0, acc)
		}
	}
}

// attentionCore runs multi-head scaled-dot-product attention over a
// fused QKV sequence (3·dim × T).
func attentionCore(in *Tensor, op *graph.AttentionCoreOp, out *Tensor) {
	dh := op.Dim / op.Heads
	t := attnTaskPool.Get().(*attnTask)
	*t = attnTask{
		in: in, out: out, op: op, dh: dh,
		invSqrt: float32(1 / math.Sqrt(float64(dh))),
	}
	parallelRun(t, in.Batch*op.Heads)
	*t = attnTask{}
	attnTaskPool.Put(t)
}

// toTokens flattens spatial patches into a token sequence, prepends the
// class token and adds position embeddings.
func toTokens(in *Tensor, op *graph.ToTokensOp, cls, pos []float32, out *Tensor) {
	spatial := in.Shape.H * in.Shape.W
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < op.Dim; c++ {
			src := in.channel(b, c)
			out.Set(b, c, 0, 0, cls[c]+pos[0*op.Dim+c])
			for t := 0; t < spatial; t++ {
				out.Set(b, c, t+1, 0, src[t]+pos[(t+1)*op.Dim+c])
			}
		}
	}
}
