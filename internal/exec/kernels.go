package exec

import (
	"math"
	"runtime"
	"sync"

	"convmeter/internal/graph"
)

// parallelFor runs f(i) for i in [0, n) over a bounded worker pool. Used
// to spread convolution output channels across cores.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// conv2d computes a grouped, strided, padded, dilated 2-D convolution.
// Weight layout: [outC][inC/groups][KH][KW]; bias may be nil.
func conv2d(in *Tensor, op *graph.Conv2dOp, weight, bias []float32, out *Tensor) {
	icPerG := op.InC / op.Groups
	ocPerG := op.OutC / op.Groups
	kArea := op.KH * op.KW
	for b := 0; b < in.Batch; b++ {
		bb := b
		parallelFor(op.OutC, func(oc int) {
			g := oc / ocPerG
			icBase := g * icPerG
			wBase := oc * icPerG * kArea
			outPlane := out.channel(bb, oc)
			var bv float32
			if bias != nil {
				bv = bias[oc]
			}
			for oh := 0; oh < out.Shape.H; oh++ {
				for ow := 0; ow < out.Shape.W; ow++ {
					acc := bv
					for ic := 0; ic < icPerG; ic++ {
						inPlane := in.channel(bb, icBase+ic)
						wRow := weight[wBase+ic*kArea:]
						for kh := 0; kh < op.KH; kh++ {
							ih := oh*op.StrideH - op.PadH + kh*op.DilationH
							if ih < 0 || ih >= in.Shape.H {
								continue
							}
							rowOff := ih * in.Shape.W
							kOff := kh * op.KW
							for kw := 0; kw < op.KW; kw++ {
								iw := ow*op.StrideW - op.PadW + kw*op.DilationW
								if iw < 0 || iw >= in.Shape.W {
									continue
								}
								acc += inPlane[rowOff+iw] * wRow[kOff+kw]
							}
						}
					}
					outPlane[oh*out.Shape.W+ow] = acc
				}
			}
		})
	}
}

// linear computes out = W·flatten(in) + b per batch element.
// Weight layout: [out][in].
func linear(in *Tensor, op *graph.LinearOp, weight, bias []float32, out *Tensor) {
	for b := 0; b < in.Batch; b++ {
		x := in.image(b)
		y := out.image(b)
		parallelFor(op.Out, func(o int) {
			row := weight[o*op.In : (o+1)*op.In]
			acc := float32(0)
			if bias != nil {
				acc = bias[o]
			}
			for i, v := range x {
				acc += row[i] * v
			}
			y[o] = acc
		})
	}
}

// tokenLinear applies a linear layer independently per token of a C×T×1
// sequence. Weight layout: [out][in].
func tokenLinear(in *Tensor, op *graph.TokenLinearOp, weight, bias []float32, out *Tensor) {
	T := in.Shape.H
	for b := 0; b < in.Batch; b++ {
		bb := b
		parallelFor(op.Out, func(o int) {
			row := weight[o*op.In : (o+1)*op.In]
			var bv float32
			if bias != nil {
				bv = bias[o]
			}
			for t := 0; t < T; t++ {
				acc := bv
				for i := 0; i < op.In; i++ {
					acc += row[i] * in.At(bb, i, t, 0)
				}
				out.Set(bb, o, t, 0, acc)
			}
		})
	}
}

// batchNorm applies the inference-time affine transform per channel.
func batchNorm(in *Tensor, scale, shift []float32, out *Tensor) {
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			s, sh := scale[c], shift[c]
			src := in.channel(b, c)
			dst := out.channel(b, c)
			for i, v := range src {
				dst[i] = v*s + sh
			}
		}
	}
}

// layerNorm normalises each token across the embedding dimension.
func layerNorm(in *Tensor, scale, shift []float32, out *Tensor) {
	const eps = 1e-5
	C := in.Shape.C
	buf := make([]float32, C)
	for b := 0; b < in.Batch; b++ {
		for t := 0; t < in.Shape.H; t++ {
			for w := 0; w < in.Shape.W; w++ {
				for c := 0; c < C; c++ {
					buf[c] = in.At(b, c, t, w)
				}
				mu := mean32(buf)
				va := variance32(buf)
				inv := float32(1 / math.Sqrt(float64(va)+eps))
				for c := 0; c < C; c++ {
					out.Set(b, c, t, w, (buf[c]-mu)*inv*scale[c]+shift[c])
				}
			}
		}
	}
}

// activation applies fn elementwise.
func activation(in *Tensor, fn graph.ActFunc, out *Tensor) {
	for i, v := range in.Data {
		out.Data[i] = applyAct(fn, v)
	}
}

// pool2d computes max or average pooling.
func pool2d(in *Tensor, op *graph.Pool2dOp, out *Tensor) {
	kArea := float32(op.KH * op.KW)
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			src := in.channel(b, c)
			dst := out.channel(b, c)
			for oh := 0; oh < out.Shape.H; oh++ {
				for ow := 0; ow < out.Shape.W; ow++ {
					var acc float32
					if op.PoolKind == graph.MaxPool {
						acc = float32(math.Inf(-1))
					}
					for kh := 0; kh < op.KH; kh++ {
						ih := oh*op.StrideH - op.PadH + kh
						if ih < 0 || ih >= in.Shape.H {
							continue
						}
						for kw := 0; kw < op.KW; kw++ {
							iw := ow*op.StrideW - op.PadW + kw
							if iw < 0 || iw >= in.Shape.W {
								continue
							}
							v := src[ih*in.Shape.W+iw]
							if op.PoolKind == graph.MaxPool {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
						}
					}
					if op.PoolKind == graph.AvgPool {
						acc /= kArea // count_include_pad, PyTorch default
					}
					dst[oh*out.Shape.W+ow] = acc
				}
			}
		}
	}
}

// adaptiveAvgPool pools (or replicates) to a fixed output resolution
// using PyTorch's region rule: [floor(i·H/out), ceil((i+1)·H/out)).
func adaptiveAvgPool(in *Tensor, out *Tensor) {
	inH, inW := in.Shape.H, in.Shape.W
	outH, outW := out.Shape.H, out.Shape.W
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			src := in.channel(b, c)
			dst := out.channel(b, c)
			for oh := 0; oh < outH; oh++ {
				h0 := oh * inH / outH
				h1 := ((oh+1)*inH + outH - 1) / outH
				for ow := 0; ow < outW; ow++ {
					w0 := ow * inW / outW
					w1 := ((ow+1)*inW + outW - 1) / outW
					var acc float32
					for h := h0; h < h1; h++ {
						for w := w0; w < w1; w++ {
							acc += src[h*inW+w]
						}
					}
					dst[oh*outW+ow] = acc / float32((h1-h0)*(w1-w0))
				}
			}
		}
	}
}

// attentionCore runs multi-head scaled-dot-product attention over a
// fused QKV sequence (3·dim × T).
func attentionCore(in *Tensor, op *graph.AttentionCoreOp, out *Tensor) {
	T := in.Shape.H
	dh := op.Dim / op.Heads
	invSqrt := float32(1 / math.Sqrt(float64(dh)))
	for b := 0; b < in.Batch; b++ {
		bb := b
		parallelFor(op.Heads, func(h int) {
			base := h * dh
			scores := make([]float32, T)
			for i := 0; i < T; i++ {
				// scores = softmax(q_i · k_j / sqrt(dh))
				maxS := float32(math.Inf(-1))
				for j := 0; j < T; j++ {
					var s float32
					for d := 0; d < dh; d++ {
						q := in.At(bb, base+d, i, 0)
						k := in.At(bb, op.Dim+base+d, j, 0)
						s += q * k
					}
					s *= invSqrt
					scores[j] = s
					if s > maxS {
						maxS = s
					}
				}
				var sum float32
				for j := 0; j < T; j++ {
					scores[j] = float32(math.Exp(float64(scores[j] - maxS)))
					sum += scores[j]
				}
				for j := 0; j < T; j++ {
					scores[j] /= sum
				}
				for d := 0; d < dh; d++ {
					var acc float32
					for j := 0; j < T; j++ {
						acc += scores[j] * in.At(bb, 2*op.Dim+base+d, j, 0)
					}
					out.Set(bb, base+d, i, 0, acc)
				}
			}
		})
	}
}

// toTokens flattens spatial patches into a token sequence, prepends the
// class token and adds position embeddings.
func toTokens(in *Tensor, op *graph.ToTokensOp, cls, pos []float32, out *Tensor) {
	spatial := in.Shape.H * in.Shape.W
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < op.Dim; c++ {
			src := in.channel(b, c)
			out.Set(b, c, 0, 0, cls[c]+pos[0*op.Dim+c])
			for t := 0; t < spatial; t++ {
				out.Set(b, c, t+1, 0, src[t]+pos[(t+1)*op.Dim+c])
			}
		}
	}
}
