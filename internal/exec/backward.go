package exec

import (
	"fmt"
	"math"

	"convmeter/internal/graph"
)

// WeightGrads accumulates the parameter gradients of one node, mirroring
// the nodeWeights layout (W: main tensor, B: bias/shift).
type WeightGrads struct {
	W, B []float32
}

// Gradients runs a full training computation: forward pass, softmax
// cross-entropy loss against the labels, and a backward pass producing
// parameter gradients for every trainable node. It returns the mean loss
// over the batch.
//
// The supported backward op set covers plain ConvNets (convolution,
// linear, ReLU, batch norm, max/avg/adaptive pooling, add, concat,
// channel slice, flatten, dropout); ops outside it return an error. This
// is the real counterpart of trainsim's *modelled* backward pass, used by
// the data-parallel reference trainer (internal/train).
func (e *Executor) Gradients(input *Tensor, labels []int) (float64, map[int]*WeightGrads, error) {
	inShape, err := e.g.InputShape()
	if err != nil {
		return 0, nil, err
	}
	if input.Shape != inShape {
		return 0, nil, fmt.Errorf("exec: input shape %v, graph expects %v", input.Shape, inShape)
	}
	if len(labels) != input.Batch {
		return 0, nil, fmt.Errorf("exec: %d labels for batch %d", len(labels), input.Batch)
	}
	batch := input.Batch

	// Forward pass, keeping every activation.
	acts := make([]*Tensor, len(e.g.Nodes))
	fwdSp := e.o.Start("fwd")
	if err := e.forwardAll(input, acts); err != nil {
		fwdSp.End()
		return 0, nil, err
	}
	fwdSp.End()
	logits := acts[len(acts)-1]
	classes := int(logits.Shape.Elems())
	for _, l := range labels {
		if l < 0 || l >= classes {
			return 0, nil, fmt.Errorf("exec: label %d out of range [0,%d)", l, classes)
		}
	}

	// Softmax cross-entropy loss and its gradient w.r.t. the logits.
	dActs := make([]*Tensor, len(e.g.Nodes))
	dLogits := NewTensor(batch, logits.Shape)
	loss := 0.0
	probs := make([]float64, classes)
	for b := 0; b < batch; b++ {
		row := logits.image(b)
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for i, v := range row {
			probs[i] = math.Exp(float64(v - maxV))
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		loss += -math.Log(math.Max(probs[labels[b]], 1e-12))
		dRow := dLogits.image(b)
		for i := range dRow {
			g := probs[i]
			if i == labels[b] {
				g -= 1
			}
			dRow[i] = float32(g / float64(batch))
		}
	}
	loss /= float64(batch)
	dActs[len(dActs)-1] = dLogits

	// Backward pass in reverse topological order.
	bwdSp := e.o.Start("bwd")
	defer bwdSp.End()
	grads := map[int]*WeightGrads{}
	for i := len(e.g.Nodes) - 1; i >= 1; i-- {
		n := e.g.Nodes[i]
		dOut := dActs[i]
		if dOut == nil {
			continue // activation feeds nothing that needs gradients
		}
		ins := make([]*Tensor, len(n.Inputs))
		dIns := make([]*Tensor, len(n.Inputs))
		for j, id := range n.Inputs {
			ins[j] = acts[id]
			if dActs[id] == nil {
				dActs[id] = NewTensor(batch, e.g.Nodes[id].Out)
			}
			dIns[j] = dActs[id]
		}
		nw := e.weights[i]
		var wg *WeightGrads
		ensure := func(wLen, bLen int) *WeightGrads {
			if wg == nil {
				wg = &WeightGrads{}
				if wLen > 0 {
					wg.W = make([]float32, wLen)
				}
				if bLen > 0 {
					wg.B = make([]float32, bLen)
				}
				grads[i] = wg
			}
			return wg
		}
		switch op := n.Op.(type) {
		case *graph.Conv2dOp:
			g := ensure(len(nw.w), len(nw.b))
			conv2dBackward(ins[0], op, nw.w, dOut, dIns[0], g.W, g.B)
		case *graph.LinearOp:
			g := ensure(len(nw.w), len(nw.b))
			linearBackward(ins[0], op, nw.w, dOut, dIns[0], g.W, g.B)
		case *graph.BatchNormOp:
			g := ensure(len(nw.w), len(nw.b))
			batchNormBackward(ins[0], nw.w, dOut, dIns[0], g.W, g.B)
		case *graph.ActivationOp:
			if err := activationBackward(op.Fn, ins[0], acts[i], dOut, dIns[0]); err != nil {
				return 0, nil, err
			}
		case *graph.Pool2dOp:
			pool2dBackward(ins[0], op, acts[i], dOut, dIns[0])
		case *graph.AdaptiveAvgPoolOp:
			adaptiveAvgPoolBackward(ins[0], dOut, dIns[0])
		case *graph.AddOp:
			for _, d := range dIns {
				for k, v := range dOut.Data {
					d.Data[k] += v
				}
			}
		case *graph.ConcatOp:
			off := 0
			for j, in := range ins {
				for b := 0; b < batch; b++ {
					for c := 0; c < in.Shape.C; c++ {
						src := dOut.channel(b, off+c)
						dst := dIns[j].channel(b, c)
						for k, v := range src {
							dst[k] += v
						}
					}
				}
				off += in.Shape.C
			}
		case *graph.SliceChannelsOp:
			for b := 0; b < batch; b++ {
				for c := op.From; c < op.To; c++ {
					src := dOut.channel(b, c-op.From)
					dst := dIns[0].channel(b, c)
					for k, v := range src {
						dst[k] += v
					}
				}
			}
		case *graph.FlattenOp, *graph.DropoutOp:
			for k, v := range dOut.Data {
				dIns[0].Data[k] += v
			}
		case *graph.MulOp:
			mulBackward(ins[0], ins[1], dOut, dIns[0], dIns[1])
		case *graph.ScaleOp:
			g := ensure(len(nw.w), 0)
			for b := 0; b < batch; b++ {
				for c := 0; c < op.C; c++ {
					gv := nw.w[c]
					src := ins[0].channel(b, c)
					d := dOut.channel(b, c)
					di := dIns[0].channel(b, c)
					for k, v := range d {
						di[k] += v * gv
						g.W[c] += v * src[k]
					}
				}
			}
		case *graph.ShuffleChannelsOp:
			// Invert the forward permutation gi·cpg+k → k·groups+gi.
			cpg := dOut.Shape.C / op.Groups
			for b := 0; b < batch; b++ {
				for c := 0; c < dOut.Shape.C; c++ {
					gi, k := c/cpg, c%cpg
					src := dOut.channel(b, k*op.Groups+gi)
					dst := dIns[0].channel(b, c)
					for j, v := range src {
						dst[j] += v
					}
				}
			}
		default:
			return 0, nil, fmt.Errorf("exec: backward for op kind %q not supported", n.Op.Kind())
		}
	}
	return loss, grads, nil
}

// forwardAll is Run with all activations retained.
func (e *Executor) forwardAll(input *Tensor, acts []*Tensor) error {
	out, err := e.runInternal(input, acts)
	if err != nil {
		return err
	}
	_ = out
	return nil
}

// activationBackward accumulates input gradients through an elementwise
// nonlinearity, using the stored input (in) and output (out) activations.
// Attention-internal softmax is handled inside the attention kernel; the
// standalone Softmax activation is the only unsupported case.
func activationBackward(fn graph.ActFunc, in, out, dOut, dIn *Tensor) error {
	for k, x := range in.Data {
		var deriv float32
		switch fn {
		case graph.ReLU:
			if x > 0 {
				deriv = 1
			}
		case graph.ReLU6:
			if x > 0 && x < 6 {
				deriv = 1
			}
		case graph.Sigmoid:
			s := out.Data[k]
			deriv = s * (1 - s)
		case graph.SiLU:
			s := applyAct(graph.Sigmoid, x)
			deriv = s * (1 + x*(1-s))
		case graph.HardSigmoid:
			if x > -3 && x < 3 {
				deriv = 1.0 / 6
			}
		case graph.HardSwish:
			switch {
			case x <= -3:
				deriv = 0
			case x >= 3:
				deriv = 1
			default:
				deriv = x/3 + 0.5
			}
		case graph.Tanh:
			o := out.Data[k]
			deriv = 1 - o*o
		case graph.GELU:
			// Derivative of the tanh approximation.
			const c = 0.7978845608028654
			x64 := float64(x)
			u := c * (x64 + 0.044715*x64*x64*x64)
			t := math.Tanh(u)
			du := c * (1 + 3*0.044715*x64*x64)
			deriv = float32(0.5*(1+t) + 0.5*x64*(1-t*t)*du)
		default:
			return fmt.Errorf("exec: backward for activation %q not supported", fn)
		}
		dIn.Data[k] += dOut.Data[k] * deriv
	}
	return nil
}

// mulBackward differentiates the broadcast product used by SE gates:
// dFull = dOut·gate, dGate[c] = Σ dOut·full over the channel plane.
func mulBackward(full, gate, dOut, dFull, dGate *Tensor) {
	if gate.Shape == full.Shape {
		for k, v := range dOut.Data {
			dFull.Data[k] += v * gate.Data[k]
			dGate.Data[k] += v * full.Data[k]
		}
		return
	}
	for b := 0; b < full.Batch; b++ {
		for c := 0; c < full.Shape.C; c++ {
			g := gate.At(b, c, 0, 0)
			src := full.channel(b, c)
			d := dOut.channel(b, c)
			df := dFull.channel(b, c)
			var acc float32
			for k, v := range d {
				df[k] += v * g
				acc += v * src[k]
			}
			dGate.Set(b, c, 0, 0, dGate.At(b, c, 0, 0)+acc)
		}
	}
}

// conv2dBackward accumulates dIn, dW and dB for a convolution.
func conv2dBackward(in *Tensor, op *graph.Conv2dOp, weight []float32, dOut, dIn *Tensor, dW, dB []float32) {
	icPerG := op.InC / op.Groups
	ocPerG := op.OutC / op.Groups
	kArea := op.KH * op.KW
	outH, outW := dOut.Shape.H, dOut.Shape.W
	for b := 0; b < in.Batch; b++ {
		for oc := 0; oc < op.OutC; oc++ {
			g := oc / ocPerG
			icBase := g * icPerG
			wBase := oc * icPerG * kArea
			dOutPlane := dOut.channel(b, oc)
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					d := dOutPlane[oh*outW+ow]
					if d == 0 {
						continue
					}
					if dB != nil {
						dB[oc] += d
					}
					for ic := 0; ic < icPerG; ic++ {
						inPlane := in.channel(b, icBase+ic)
						dInPlane := dIn.channel(b, icBase+ic)
						for kh := 0; kh < op.KH; kh++ {
							ih := oh*op.StrideH - op.PadH + kh*op.DilationH
							if ih < 0 || ih >= in.Shape.H {
								continue
							}
							for kw := 0; kw < op.KW; kw++ {
								iw := ow*op.StrideW - op.PadW + kw*op.DilationW
								if iw < 0 || iw >= in.Shape.W {
									continue
								}
								wIdx := wBase + ic*kArea + kh*op.KW + kw
								dW[wIdx] += d * inPlane[ih*in.Shape.W+iw]
								dInPlane[ih*in.Shape.W+iw] += d * weight[wIdx]
							}
						}
					}
				}
			}
		}
	}
}

// linearBackward accumulates dIn, dW and dB for a fully connected layer.
func linearBackward(in *Tensor, op *graph.LinearOp, weight []float32, dOut, dIn *Tensor, dW, dB []float32) {
	for b := 0; b < in.Batch; b++ {
		x := in.image(b)
		dy := dOut.image(b)
		dx := dIn.image(b)
		for o := 0; o < op.Out; o++ {
			d := dy[o]
			if d == 0 {
				continue
			}
			if dB != nil {
				dB[o] += d
			}
			row := weight[o*op.In : (o+1)*op.In]
			dRow := dW[o*op.In : (o+1)*op.In]
			for i := 0; i < op.In; i++ {
				dRow[i] += d * x[i]
				dx[i] += d * row[i]
			}
		}
	}
}

// batchNormBackward treats the layer as the affine transform it is at
// inference (scale/shift with frozen statistics), the standard choice for
// fine-tuning: dIn = dOut·scale, dScale = Σ dOut·in, dShift = Σ dOut.
func batchNormBackward(in *Tensor, scale []float32, dOut, dIn *Tensor, dScale, dShift []float32) {
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			s := scale[c]
			src := in.channel(b, c)
			d := dOut.channel(b, c)
			di := dIn.channel(b, c)
			for k, v := range d {
				di[k] += v * s
				dScale[c] += v * src[k]
				dShift[c] += v
			}
		}
	}
}

// pool2dBackward routes gradients through max pooling (to the argmax
// position, recomputed from the forward output) or distributes them for
// average pooling.
func pool2dBackward(in *Tensor, op *graph.Pool2dOp, out, dOut, dIn *Tensor) {
	kArea := float32(op.KH * op.KW)
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			src := in.channel(b, c)
			fwd := out.channel(b, c)
			d := dOut.channel(b, c)
			di := dIn.channel(b, c)
			for oh := 0; oh < out.Shape.H; oh++ {
				for ow := 0; ow < out.Shape.W; ow++ {
					g := d[oh*out.Shape.W+ow]
					if g == 0 {
						continue
					}
					if op.PoolKind == graph.AvgPool {
						g /= kArea
					}
					routed := false
					for kh := 0; kh < op.KH; kh++ {
						ih := oh*op.StrideH - op.PadH + kh
						if ih < 0 || ih >= in.Shape.H {
							continue
						}
						for kw := 0; kw < op.KW; kw++ {
							iw := ow*op.StrideW - op.PadW + kw
							if iw < 0 || iw >= in.Shape.W {
								continue
							}
							idx := ih*in.Shape.W + iw
							if op.PoolKind == graph.AvgPool {
								di[idx] += g
							} else if !routed && src[idx] == fwd[oh*out.Shape.W+ow] { //lint:ignore floatcmp max-pool argmax routing: the forward pass stored exactly this value, bit-equality is the intended test
								di[idx] += g
								routed = true
							}
						}
					}
				}
			}
		}
	}
}

// adaptiveAvgPoolBackward distributes gradients uniformly over each
// pooling region.
func adaptiveAvgPoolBackward(in *Tensor, dOut, dIn *Tensor) {
	inH, inW := in.Shape.H, in.Shape.W
	outH, outW := dOut.Shape.H, dOut.Shape.W
	for b := 0; b < in.Batch; b++ {
		for c := 0; c < in.Shape.C; c++ {
			d := dOut.channel(b, c)
			di := dIn.channel(b, c)
			for oh := 0; oh < outH; oh++ {
				h0 := oh * inH / outH
				h1 := ((oh+1)*inH + outH - 1) / outH
				for ow := 0; ow < outW; ow++ {
					w0 := ow * inW / outW
					w1 := ((ow+1)*inW + outW - 1) / outW
					g := d[oh*outW+ow] / float32((h1-h0)*(w1-w0))
					for h := h0; h < h1; h++ {
						for w := w0; w < w1; w++ {
							di[h*inW+w] += g
						}
					}
				}
			}
		}
	}
}

// ApplySGD performs an in-place SGD step on the executor's weights.
func (e *Executor) ApplySGD(grads map[int]*WeightGrads, lr float32) {
	for id, g := range grads {
		nw := e.weights[id]
		for k := range g.W {
			nw.w[k] -= lr * g.W[k]
		}
		for k := range g.B {
			nw.b[k] -= lr * g.B[k]
		}
	}
}

// AdamState holds per-parameter first/second-moment estimates for the
// Adam optimizer — the optimizer of the paper's training setup ("we
// deploy Horovod with PyTorch and Adam as the optimizer").
type AdamState struct {
	step int
	m, v map[int]*WeightGrads // moments, keyed like the gradient maps
}

// NewAdamState returns empty moment buffers.
func NewAdamState() *AdamState {
	return &AdamState{m: map[int]*WeightGrads{}, v: map[int]*WeightGrads{}}
}

// ApplyAdam performs an in-place Adam step with the standard defaults
// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8) and bias correction. State buffers are
// allocated lazily per node; the update is fully deterministic, so
// data-parallel replicas applying identical averaged gradients stay
// identical.
func (e *Executor) ApplyAdam(st *AdamState, grads map[int]*WeightGrads, lr float32) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	st.step++
	bc1 := 1 - float32(math.Pow(beta1, float64(st.step)))
	bc2 := 1 - float32(math.Pow(beta2, float64(st.step)))
	update := func(w, g, m, v []float32) {
		for k := range g {
			m[k] = beta1*m[k] + (1-beta1)*g[k]
			v[k] = beta2*v[k] + (1-beta2)*g[k]*g[k]
			mHat := m[k] / bc1
			vHat := v[k] / bc2
			w[k] -= lr * mHat / (float32(math.Sqrt(float64(vHat))) + eps)
		}
	}
	for id, g := range grads {
		nw := e.weights[id]
		mg, ok := st.m[id]
		if !ok {
			mg = &WeightGrads{W: make([]float32, len(g.W)), B: make([]float32, len(g.B))}
			st.m[id] = mg
			st.v[id] = &WeightGrads{W: make([]float32, len(g.W)), B: make([]float32, len(g.B))}
		}
		vg := st.v[id]
		update(nw.w, g.W, mg.W, vg.W)
		update(nw.b, g.B, mg.B, vg.B)
	}
}

// FlattenGrads serialises gradients into one vector in node order — the
// payload a gradient all-reduce synchronises.
func (e *Executor) FlattenGrads(grads map[int]*WeightGrads) []float32 {
	var out []float32
	for i := range e.g.Nodes {
		if g, ok := grads[i]; ok {
			out = append(out, g.W...)
			out = append(out, g.B...)
		}
	}
	return out
}

// UnflattenGrads writes a vector produced by FlattenGrads back into the
// gradient maps (after an all-reduce).
func (e *Executor) UnflattenGrads(vec []float32, grads map[int]*WeightGrads) error {
	off := 0
	for i := range e.g.Nodes {
		if g, ok := grads[i]; ok {
			n := len(g.W) + len(g.B)
			if off+n > len(vec) {
				return fmt.Errorf("exec: gradient vector too short")
			}
			copy(g.W, vec[off:off+len(g.W)])
			copy(g.B, vec[off+len(g.W):off+n])
			off += n
		}
	}
	if off != len(vec) {
		return fmt.Errorf("exec: gradient vector has %d extra elements", len(vec)-off)
	}
	return nil
}

// WeightChecksum returns a deterministic digest of all weights, used to
// verify that data-parallel replicas stay synchronised.
func (e *Executor) WeightChecksum() float64 {
	sum := 0.0
	for _, nw := range e.weights {
		for k, v := range nw.w {
			sum += float64(v) * float64(k%97+1)
		}
		for k, v := range nw.b {
			sum += float64(v) * float64(k%89+1)
		}
	}
	return sum
}
