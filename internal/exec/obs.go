package exec

import "convmeter/internal/obs"

// SetObs attaches a telemetry bundle to the executor. Per-node metric
// handles — an execution counter and a latency histogram per op *kind* —
// are resolved once here so the hot kernel loop in runInternal touches
// only pre-built handles. Passing nil detaches telemetry and restores
// the zero-overhead path.
func (e *Executor) SetObs(o *obs.Obs) {
	e.o = o
	if o == nil {
		e.opCount, e.opTime = nil, nil
		return
	}
	e.opCount = make([]*obs.Counter, len(e.g.Nodes))
	e.opTime = make([]*obs.Histogram, len(e.g.Nodes))
	for i, n := range e.g.Nodes {
		kind := n.Op.Kind()
		e.opCount[i] = o.Counter(obs.Label("convmeter_exec_ops_total", "kind", kind),
			"kernel executions, by op kind")
		e.opTime[i] = o.Histogram(obs.Label("convmeter_exec_op_seconds", "kind", kind),
			"per-kernel forward wall-clock, by op kind", obs.DefaultDurationBuckets())
	}
}
