package exec

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"convmeter/internal/graph"
	"convmeter/internal/obs"
)

// nodeWeights holds the initialised parameters of one node (nil slices
// for parameter-free ops).
type nodeWeights struct {
	w, b []float32 // conv/linear weight+bias, bn/ln scale+shift, tokens pos+cls
}

// Executor runs a validated graph with deterministic, seeded weights.
// It is safe for sequential reuse; Run allocates fresh activations.
type Executor struct {
	g       *graph.Graph
	weights []nodeWeights
	seed    int64

	// Telemetry (see SetObs). opCount/opTime are per-node handles indexed
	// like g.Nodes; both nil when telemetry is detached.
	o       *obs.Obs
	opCount []*obs.Counter
	opTime  []*obs.Histogram
}

// NewExecutor validates the graph and initialises every parameterised
// node with He-style random weights from the seed. The same (graph, seed)
// pair always yields identical numerics.
func NewExecutor(g *graph.Graph, seed int64) (*Executor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	e := &Executor{g: g, weights: make([]nodeWeights, len(g.Nodes)), seed: seed}
	for i, n := range g.Nodes {
		rng := rand.New(rand.NewSource(seed + int64(i)*1000003))
		he := func(n int, fanIn int) []float32 {
			out := make([]float32, n)
			std := float32(math.Sqrt(2 / float64(fanIn)))
			for j := range out {
				out[j] = float32(rng.NormFloat64()) * std
			}
			return out
		}
		switch op := n.Op.(type) {
		case *graph.Conv2dOp:
			fanIn := op.InC / op.Groups * op.KH * op.KW
			w := he(op.OutC*fanIn, fanIn)
			var b []float32
			if op.Bias {
				b = make([]float32, op.OutC)
			}
			e.weights[i] = nodeWeights{w: w, b: b}
		case *graph.LinearOp:
			w := he(op.Out*op.In, op.In)
			var b []float32
			if op.Bias {
				b = make([]float32, op.Out)
			}
			e.weights[i] = nodeWeights{w: w, b: b}
		case *graph.TokenLinearOp:
			w := he(op.Out*op.In, op.In)
			var b []float32
			if op.Bias {
				b = make([]float32, op.Out)
			}
			e.weights[i] = nodeWeights{w: w, b: b}
		case *graph.BatchNormOp:
			scale := make([]float32, op.C)
			shift := make([]float32, op.C)
			for j := range scale {
				scale[j] = 1
			}
			e.weights[i] = nodeWeights{w: scale, b: shift}
		case *graph.LayerNormOp:
			scale := make([]float32, op.Dim)
			shift := make([]float32, op.Dim)
			for j := range scale {
				scale[j] = 1
			}
			e.weights[i] = nodeWeights{w: scale, b: shift}
		case *graph.ToTokensOp:
			pos := make([]float32, op.Tokens*op.Dim)
			for j := range pos {
				pos[j] = float32(rng.NormFloat64()) * 0.02
			}
			cls := make([]float32, op.Dim)
			e.weights[i] = nodeWeights{w: pos, b: cls}
		case *graph.ScaleOp:
			gamma := make([]float32, op.C)
			for j := range gamma {
				gamma[j] = 1
			}
			e.weights[i] = nodeWeights{w: gamma}
		}
	}
	return e, nil
}

// RandomInput builds a deterministic pseudo-random input tensor for the
// graph at the given batch size.
func (e *Executor) RandomInput(batch int) (*Tensor, error) {
	in, err := e.g.InputShape()
	if err != nil {
		return nil, err
	}
	t := NewTensor(batch, in)
	rng := rand.New(rand.NewSource(e.seed ^ 0x5eed))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t, nil
}

// Run executes the graph on the given input and returns the final node's
// output tensor.
func (e *Executor) Run(input *Tensor) (*Tensor, error) {
	sp := e.o.Start("fwd")
	defer sp.End()
	acts := make([]*Tensor, len(e.g.Nodes))
	return e.runInternal(input, acts)
}

// runInternal executes the graph, filling acts with every node's output
// (retained for the backward pass).
func (e *Executor) runInternal(input *Tensor, acts []*Tensor) (*Tensor, error) {
	inShape, err := e.g.InputShape()
	if err != nil {
		return nil, err
	}
	if input.Shape != inShape {
		return nil, fmt.Errorf("exec: input shape %v, graph expects %v", input.Shape, inShape)
	}
	batch := input.Batch
	maxIns := 0
	for _, n := range e.g.Nodes {
		if len(n.Inputs) > maxIns {
			maxIns = len(n.Inputs)
		}
	}
	insBuf := make([]*Tensor, maxIns)
	for i, n := range e.g.Nodes {
		ins := insBuf[:len(n.Inputs)]
		for j, id := range n.Inputs {
			ins[j] = acts[id]
		}
		out := NewTensor(batch, n.Out)
		nw := e.weights[i]
		var t0 time.Time
		if e.opTime != nil {
			t0 = time.Now()
		}
		switch op := n.Op.(type) {
		case *graph.InputOp:
			copy(out.Data, input.Data)
		case *graph.Conv2dOp:
			conv2d(ins[0], op, nw.w, nw.b, out)
		case *graph.LinearOp:
			linear(ins[0], op, nw.w, nw.b, out)
		case *graph.TokenLinearOp:
			tokenLinear(ins[0], op, nw.w, nw.b, out)
		case *graph.BatchNormOp:
			batchNorm(ins[0], nw.w, nw.b, out)
		case *graph.LayerNormOp:
			layerNorm(ins[0], nw.w, nw.b, out)
		case *graph.ActivationOp:
			activation(ins[0], op.Fn, out)
		case *graph.Pool2dOp:
			pool2d(ins[0], op, out)
		case *graph.AdaptiveAvgPoolOp:
			adaptiveAvgPool(ins[0], out)
		case *graph.AddOp:
			copy(out.Data, ins[0].Data)
			for _, other := range ins[1:] {
				for k, v := range other.Data {
					out.Data[k] += v
				}
			}
		case *graph.MulOp:
			mulBroadcast(ins[0], ins[1], out)
		case *graph.ConcatOp:
			concatChannels(ins, out)
		case *graph.FlattenOp, *graph.DropoutOp:
			copy(out.Data, ins[0].Data)
		case *graph.TakeTokenOp:
			for b := 0; b < batch; b++ {
				for c := 0; c < out.Shape.C; c++ {
					out.Set(b, c, 0, 0, ins[0].At(b, c, 0, 0))
				}
			}
		case *graph.ToTokensOp:
			toTokens(ins[0], op, nw.b, nw.w, out)
		case *graph.AttentionCoreOp:
			attentionCore(ins[0], op, out)
		case *graph.ScaleOp:
			for b := 0; b < batch; b++ {
				for c := 0; c < out.Shape.C; c++ {
					gv := nw.w[c]
					src := ins[0].channel(b, c)
					dst := out.channel(b, c)
					for k, v := range src {
						dst[k] = v * gv
					}
				}
			}
		case *graph.SliceChannelsOp:
			for b := 0; b < batch; b++ {
				for c := op.From; c < op.To; c++ {
					copy(out.channel(b, c-op.From), ins[0].channel(b, c))
				}
			}
		case *graph.ShuffleChannelsOp:
			// PyTorch channel_shuffle: view (groups × C/groups), transpose,
			// flatten — input channel gi·cpg+k lands at k·groups+gi.
			cpg := out.Shape.C / op.Groups
			for b := 0; b < batch; b++ {
				for c := 0; c < out.Shape.C; c++ {
					gi, k := c/cpg, c%cpg
					copy(out.channel(b, k*op.Groups+gi), ins[0].channel(b, c))
				}
			}
		default:
			return nil, fmt.Errorf("exec: no kernel for op kind %q", n.Op.Kind())
		}
		if e.opTime != nil {
			e.opTime[i].Observe(time.Since(t0).Seconds())
			e.opCount[i].Inc()
		}
		acts[i] = out
	}
	return acts[len(acts)-1], nil
}

// mulBroadcast multiplies a full tensor by either an equally shaped
// tensor or a per-channel C×1×1 gate.
func mulBroadcast(full, gate *Tensor, out *Tensor) {
	if gate.Shape == full.Shape {
		for i, v := range full.Data {
			out.Data[i] = v * gate.Data[i]
		}
		return
	}
	for b := 0; b < full.Batch; b++ {
		for c := 0; c < full.Shape.C; c++ {
			g := gate.At(b, c, 0, 0)
			src := full.channel(b, c)
			dst := out.channel(b, c)
			for i, v := range src {
				dst[i] = v * g
			}
		}
	}
}

// concatChannels concatenates inputs along the channel dimension.
func concatChannels(ins []*Tensor, out *Tensor) {
	for b := 0; b < out.Batch; b++ {
		oc := 0
		for _, in := range ins {
			for c := 0; c < in.Shape.C; c++ {
				copy(out.channel(b, oc), in.channel(b, c))
				oc++
			}
		}
	}
}
