package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernels in this package are declared hot-path roots in
// lint.config: everything they do per invocation must be
// allocation-free, or the GC noise lands in the very wall-clock
// samples hwreal feeds into the runtime model. The old parallelFor
// helper allocated a channel, a closure and a goroutine set on every
// call; this file replaces it with a persistent worker pool fed
// pooled task structs.

// kernelScratch holds one worker's reusable temporary buffers. Each
// pool worker owns one; the serial path borrows one from scratchPool.
type kernelScratch struct {
	buf []float32
}

// floats returns a scratch slice of length n backed by the worker's
// buffer, growing it only when a larger kernel arrives.
func (sc *kernelScratch) floats(n int) []float32 {
	if cap(sc.buf) < n {
		//lint:ignore hotpath amortised scratch growth: steady-state invocations reuse the worker buffer
		sc.buf = make([]float32, n)
	}
	return sc.buf[:n]
}

// indexRunner is one parallel kernel invocation: run computes item i
// of a flattened index space using the worker-local scratch sc. Items
// must be independent — each writes disjoint output elements — so any
// assignment of items to workers yields identical numerics.
type indexRunner interface {
	run(i int, sc *kernelScratch)
}

// poolWork is one parallelRun submission: workers atomically claim
// indices from next until n is exhausted.
type poolWork struct {
	r    indexRunner
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

var (
	poolStart sync.Once
	poolCh    chan *poolWork
	poolSize  int

	workPool    = sync.Pool{New: func() any { return new(poolWork) }}
	scratchPool = sync.Pool{New: func() any { return new(kernelScratch) }}
)

// startPool launches the persistent kernel workers, sized to
// GOMAXPROCS at first use. The workers live for the process lifetime
// by design; each signals completion of a submission via its
// WaitGroup Done.
func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	poolCh = make(chan *poolWork, poolSize)
	for w := 0; w < poolSize; w++ {
		go func() {
			sc := &kernelScratch{}
			for pw := range poolCh {
				drainWork(pw, sc)
				pw.wg.Done()
			}
		}()
	}
}

// drainWork claims and runs items until the submission is exhausted.
func drainWork(pw *poolWork, sc *kernelScratch) {
	for {
		i := pw.next.Add(1) - 1
		if i >= pw.n {
			return
		}
		pw.r.run(int(i), sc)
	}
}

// parallelRun runs r.run(i, sc) for i in [0, n) across the persistent
// pool, or serially when the pool would not help. It allocates nothing
// in steady state: the submission struct and the serial-path scratch
// both come from sync.Pools.
func parallelRun(r indexRunner, n int) {
	if n <= 0 {
		return
	}
	poolStart.Do(startPool)
	if poolSize <= 1 || n == 1 {
		sc := scratchPool.Get().(*kernelScratch)
		for i := 0; i < n; i++ {
			r.run(i, sc)
		}
		scratchPool.Put(sc)
		return
	}
	pw := workPool.Get().(*poolWork)
	pw.r = r
	pw.n = int64(n)
	pw.next.Store(0)
	workers := poolSize
	if workers > n {
		workers = n
	}
	pw.wg.Add(workers)
	for w := 0; w < workers; w++ {
		poolCh <- pw
	}
	pw.wg.Wait()
	pw.r = nil
	workPool.Put(pw)
}
