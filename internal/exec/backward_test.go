package exec

import (
	"math"
	"math/rand"
	"testing"

	"convmeter/internal/graph"
)

// tinyCNN is a small trainable network covering the supported backward
// op set: conv, bn, relu, maxpool, avgpool via head, add, linear.
func tinyCNN(t *testing.T, classes int) *graph.Graph {
	t.Helper()
	b, x := graph.NewBuilder("tinycnn", graph.Shape{C: 2, H: 8, W: 8})
	x = b.Conv(x, "conv1", 4, 3, 1, 1)
	x = b.BatchNorm(x, "bn1")
	x = b.ReLU(x, "relu1")
	skip := x
	x = b.Conv(x, "conv2", 4, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.Add("add", x, skip)
	x = b.MaxPool2d(x, "pool", 2, 2, 0)
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flat")
	x = b.Linear(x, "fc", classes)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGradientsLossFinite(t *testing.T) {
	g := tinyCNN(t, 3)
	e, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(4)
	if err != nil {
		t.Fatal(err)
	}
	loss, grads, err := e.Gradients(in, []int{0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("loss = %g", loss)
	}
	if len(grads) == 0 {
		t.Fatal("no gradients produced")
	}
	for id, wg := range grads {
		for _, v := range append(append([]float32{}, wg.W...), wg.B...) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("node %d: non-finite gradient", id)
			}
		}
	}
}

func TestGradientsNumericalCheck(t *testing.T) {
	// Finite-difference validation of the analytic gradients across every
	// trainable node of the tiny CNN.
	g := tinyCNN(t, 3)
	e, err := NewExecutor(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(2)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{1, 2}
	_, grads, err := e.Gradients(in, labels)
	if err != nil {
		t.Fatal(err)
	}
	lossAt := func() float64 {
		l, _, err := e.Gradients(in, labels)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	rng := rand.New(rand.NewSource(9))
	const eps = 1e-3
	checked := 0
	for id, wg := range grads {
		nw := e.weights[id]
		// Sample a few weights per node.
		for trial := 0; trial < 3 && len(wg.W) > 0; trial++ {
			k := rng.Intn(len(wg.W))
			orig := nw.w[k]
			nw.w[k] = orig + eps
			up := lossAt()
			nw.w[k] = orig - eps
			down := lossAt()
			nw.w[k] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(wg.W[k])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1e-3, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 0.08 {
				t.Fatalf("node %d weight %d: analytic %g vs numeric %g", id, k, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d gradient checks performed", checked)
	}
}

// mobileStyleNet covers the extended backward set: depthwise conv, SE
// gate (SiLU + sigmoid broadcast mul), hard-swish, layer scale, channel
// shuffle, average pooling.
func mobileStyleNet(t *testing.T) *graph.Graph {
	t.Helper()
	b, x := graph.NewBuilder("mobilestyle", graph.Shape{C: 4, H: 8, W: 8})
	x = b.Conv(x, "expand", 8, 1, 1, 0)
	x = b.Act(x, "hs", graph.HardSwish)
	x = b.DWConv(x, "dw", 3, 1, 1)
	x = b.Act(x, "silu", graph.SiLU)
	// Squeeze-and-excitation gate.
	gate := b.GlobalAvgPool(x, "squeeze")
	gate = b.Conv2d(gate, "fc1", graph.ConvSpec{Out: 2, Bias: true})
	gate = b.ReLU(gate, "fc1act")
	gate = b.Conv2d(gate, "fc2", graph.ConvSpec{Out: 8, Bias: true})
	gate = b.Act(gate, "gateact", graph.Sigmoid)
	x = b.Mul("se", x, gate)
	x = b.ShuffleChannels(x, "shuffle", 2)
	x = b.Scale(x, "layer_scale")
	x = b.AvgPool2d(x, "avg", 2, 2, 0)
	x = b.Act(x, "tanh", graph.Tanh)
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flat")
	x = b.Linear(x, "fc", 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGradientsNumericalCheckMobileOps(t *testing.T) {
	g := mobileStyleNet(t)
	e, err := NewExecutor(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(2)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 2}
	_, grads, err := e.Gradients(in, labels)
	if err != nil {
		t.Fatal(err)
	}
	lossAt := func() float64 {
		l, _, err := e.Gradients(in, labels)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	rng := rand.New(rand.NewSource(31))
	const eps = 1e-3
	checked := 0
	for id, wg := range grads {
		nw := e.weights[id]
		for trial := 0; trial < 3 && len(wg.W) > 0; trial++ {
			k := rng.Intn(len(wg.W))
			orig := nw.w[k]
			nw.w[k] = orig + eps
			up := lossAt()
			nw.w[k] = orig - eps
			down := lossAt()
			nw.w[k] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(wg.W[k])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1e-3, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 0.1 {
				t.Fatalf("node %d (%s) weight %d: analytic %g vs numeric %g",
					id, g.Nodes[id].Name, k, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 12 {
		t.Fatalf("only %d gradient checks performed", checked)
	}
}

func TestSGDTrainsMobileStyleNet(t *testing.T) {
	g := mobileStyleNet(t)
	e, err := NewExecutor(g, 13)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(6)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 2, 0, 1, 2}
	first, grads, err := e.Gradients(in, labels)
	if err != nil {
		t.Fatal(err)
	}
	// The tanh/SE squashing makes this tiny net slow to optimise; a
	// higher rate over more steps still has to overfit the fixed batch.
	loss := first
	for step := 0; step < 250; step++ {
		e.ApplySGD(grads, 0.5)
		loss, grads, err = e.Gradients(in, labels)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss >= first*0.6 {
		t.Fatalf("mobile-style net did not learn: %g -> %g", first, loss)
	}
}

func TestGradientsValidation(t *testing.T) {
	g := tinyCNN(t, 3)
	e, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Gradients(in, []int{0}); err == nil {
		t.Fatal("expected label-count error")
	}
	if _, _, err := e.Gradients(in, []int{0, 99}); err == nil {
		t.Fatal("expected label-range error")
	}
	wrong := NewTensor(2, graph.Shape{C: 3, H: 8, W: 8})
	if _, _, err := e.Gradients(wrong, []int{0, 1}); err == nil {
		t.Fatal("expected input-shape error")
	}
}

func TestGradientsUnsupportedOp(t *testing.T) {
	// Attention backward is intentionally unsupported (training
	// transformers is out of scope); the error must surface cleanly.
	b, x := graph.NewBuilder("attnnet", graph.Shape{C: 4, H: 2, W: 2})
	x = b.ToTokens(x, "tokens")
	x = b.TokenLinear(x, "qkv", 12, true)
	x = b.AttentionCore(x, "attn", 4, 2)
	x = b.TakeToken(x, "cls")
	x = b.Flatten(x, "f")
	x = b.Linear(x, "fc", 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Gradients(in, []int{0}); err == nil {
		t.Fatal("expected unsupported-op error")
	}
}

func TestSGDStepReducesLossOnFixedBatch(t *testing.T) {
	// Overfitting a single batch: repeated SGD steps must drive the loss
	// down — end-to-end proof that forward, backward and update compose.
	g := tinyCNN(t, 3)
	e, err := NewExecutor(g, 11)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(6)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 2, 0, 1, 2}
	first, grads, err := e.Gradients(in, labels)
	if err != nil {
		t.Fatal(err)
	}
	loss := first
	for step := 0; step < 40; step++ {
		e.ApplySGD(grads, 0.1)
		loss, grads, err = e.Gradients(in, labels)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss >= first*0.5 {
		t.Fatalf("loss did not halve: %g -> %g", first, loss)
	}
}

func TestFlattenUnflattenGradsRoundTrip(t *testing.T) {
	g := tinyCNN(t, 3)
	e, err := NewExecutor(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.RandomInput(2)
	if err != nil {
		t.Fatal(err)
	}
	_, grads, err := e.Gradients(in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	vec := e.FlattenGrads(grads)
	if int64(len(vec)) != g.TotalParams() {
		t.Fatalf("gradient vector has %d entries, want %d", len(vec), g.TotalParams())
	}
	// Scale the vector, write it back, and verify the maps changed.
	for i := range vec {
		vec[i] *= 2
	}
	if err := e.UnflattenGrads(vec, grads); err != nil {
		t.Fatal(err)
	}
	back := e.FlattenGrads(grads)
	for i := range vec {
		if back[i] != vec[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	// Length errors.
	if err := e.UnflattenGrads(vec[:len(vec)-1], grads); err == nil {
		t.Fatal("expected short-vector error")
	}
	if err := e.UnflattenGrads(append(vec, 0), grads); err == nil {
		t.Fatal("expected long-vector error")
	}
}

func TestWeightChecksumTracksChanges(t *testing.T) {
	g := tinyCNN(t, 3)
	e, err := NewExecutor(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := e.WeightChecksum()
	in, err := e.RandomInput(2)
	if err != nil {
		t.Fatal(err)
	}
	_, grads, err := e.Gradients(in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	e.ApplySGD(grads, 0.05)
	if e.WeightChecksum() == a {
		t.Fatal("checksum unchanged after an SGD step")
	}
}
