package exec

import (
	"testing"

	"convmeter/internal/graph"
	"convmeter/internal/testrace"
)

// assertZeroAllocs warms f (pool start, task pools, amortised scratch
// growth) and then pins 0 allocs/op — the contract the hotpath analyzer
// enforces statically on the declared kernel roots.
func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	for i := 0; i < 3; i++ {
		f()
	}
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s allocates %.2f/op, want 0", name, n)
	}
}

// TestKernelsZeroAllocs pins the steady-state allocation contract of
// every forward kernel declared as a hotpath root in lint.config.
func TestKernelsZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	convOp := &graph.Conv2dOp{InC: 2, OutC: 3, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		DilationH: 1, DilationW: 1, Groups: 1, Bias: true}
	convIn := NewTensor(2, graph.Shape{C: 2, H: 4, W: 4})
	convOut := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	convW := make([]float32, 3*2*3*3)
	convB := make([]float32, 3)
	fill(convIn.Data)
	fill(convW)
	assertZeroAllocs(t, "conv2d", func() {
		conv2d(convIn, convOp, convW, convB, convOut)
	})

	linOp := &graph.LinearOp{In: 8, Out: 4, Bias: true}
	linIn := NewTensor(2, graph.Shape{C: 8, H: 1, W: 1})
	linOut := NewTensor(2, graph.Shape{C: 4, H: 1, W: 1})
	linW := make([]float32, 8*4)
	linB := make([]float32, 4)
	fill(linIn.Data)
	fill(linW)
	assertZeroAllocs(t, "linear", func() {
		linear(linIn, linOp, linW, linB, linOut)
	})

	tokOp := &graph.TokenLinearOp{In: 4, Out: 6, Bias: true}
	tokIn := NewTensor(2, graph.Shape{C: 4, H: 3, W: 1})
	tokOut := NewTensor(2, graph.Shape{C: 6, H: 3, W: 1})
	tokW := make([]float32, 4*6)
	tokB := make([]float32, 6)
	fill(tokIn.Data)
	fill(tokW)
	assertZeroAllocs(t, "tokenLinear", func() {
		tokenLinear(tokIn, tokOp, tokW, tokB, tokOut)
	})

	normIn := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	normOut := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	scale := []float32{1, 2, 0.5}
	shift := []float32{0, 1, -1}
	fill(normIn.Data)
	assertZeroAllocs(t, "batchNorm", func() {
		batchNorm(normIn, scale, shift, normOut)
	})
	assertZeroAllocs(t, "layerNorm", func() {
		layerNorm(normIn, scale, shift, normOut)
	})
	assertZeroAllocs(t, "activation", func() {
		activation(normIn, graph.ReLU, normOut)
	})

	poolOp := &graph.Pool2dOp{PoolKind: graph.MaxPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	poolOut := NewTensor(2, graph.Shape{C: 3, H: 2, W: 2})
	assertZeroAllocs(t, "pool2d", func() {
		pool2d(normIn, poolOp, poolOut)
	})
	gapOut := NewTensor(2, graph.Shape{C: 3, H: 1, W: 1})
	assertZeroAllocs(t, "adaptiveAvgPool", func() {
		adaptiveAvgPool(normIn, gapOut)
	})

	attnOp := &graph.AttentionCoreOp{Dim: 4, Heads: 2}
	attnIn := NewTensor(2, graph.Shape{C: 12, H: 3, W: 1})
	attnOut := NewTensor(2, graph.Shape{C: 4, H: 3, W: 1})
	fill(attnIn.Data)
	assertZeroAllocs(t, "attentionCore", func() {
		attentionCore(attnIn, attnOp, attnOut)
	})

	tokensOp := &graph.ToTokensOp{Dim: 3, Tokens: 5}
	tokensIn := NewTensor(2, graph.Shape{C: 3, H: 2, W: 2})
	tokensOut := NewTensor(2, graph.Shape{C: 3, H: 5, W: 1})
	cls := make([]float32, 3)
	pos := make([]float32, 3*5)
	fill(tokensIn.Data)
	assertZeroAllocs(t, "toTokens", func() {
		toTokens(tokensIn, tokensOp, cls, pos, tokensOut)
	})
}

// TestBackwardKernelsZeroAllocs pins the same contract on the backward
// kernel roots used by the training path.
func TestBackwardKernelsZeroAllocs(t *testing.T) {
	testrace.SkipIfRace(t)

	convOp := &graph.Conv2dOp{InC: 2, OutC: 3, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		DilationH: 1, DilationW: 1, Groups: 1, Bias: true}
	in := NewTensor(2, graph.Shape{C: 2, H: 4, W: 4})
	dIn := NewTensor(2, graph.Shape{C: 2, H: 4, W: 4})
	dOut := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	w := make([]float32, 3*2*3*3)
	dW := make([]float32, len(w))
	dB := make([]float32, 3)
	fill(in.Data)
	fill(dOut.Data)
	fill(w)
	assertZeroAllocs(t, "conv2dBackward", func() {
		conv2dBackward(in, convOp, w, dOut, dIn, dW, dB)
	})

	linOp := &graph.LinearOp{In: 8, Out: 4, Bias: true}
	linIn := NewTensor(2, graph.Shape{C: 8, H: 1, W: 1})
	linDIn := NewTensor(2, graph.Shape{C: 8, H: 1, W: 1})
	linDOut := NewTensor(2, graph.Shape{C: 4, H: 1, W: 1})
	linW := make([]float32, 8*4)
	linDW := make([]float32, len(linW))
	linDB := make([]float32, 4)
	fill(linIn.Data)
	fill(linDOut.Data)
	fill(linW)
	assertZeroAllocs(t, "linearBackward", func() {
		linearBackward(linIn, linOp, linW, linDOut, linDIn, linDW, linDB)
	})

	act := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	actOut := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	actDOut := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	actDIn := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	fill(act.Data)
	fill(actDOut.Data)
	activation(act, graph.ReLU, actOut)
	assertZeroAllocs(t, "activationBackward", func() {
		if err := activationBackward(graph.ReLU, act, actOut, actDOut, actDIn); err != nil {
			t.Fatal(err)
		}
	})

	scale := []float32{1, 2, 0.5}
	dScale := make([]float32, 3)
	dShift := make([]float32, 3)
	assertZeroAllocs(t, "batchNormBackward", func() {
		batchNormBackward(act, scale, actDOut, actDIn, dScale, dShift)
	})

	poolOp := &graph.Pool2dOp{PoolKind: graph.MaxPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	poolOut := NewTensor(2, graph.Shape{C: 3, H: 2, W: 2})
	poolDOut := NewTensor(2, graph.Shape{C: 3, H: 2, W: 2})
	pool2d(act, poolOp, poolOut)
	fill(poolDOut.Data)
	assertZeroAllocs(t, "pool2dBackward", func() {
		pool2dBackward(act, poolOp, poolOut, poolDOut, actDIn)
	})

	gapDOut := NewTensor(2, graph.Shape{C: 3, H: 1, W: 1})
	fill(gapDOut.Data)
	assertZeroAllocs(t, "adaptiveAvgPoolBackward", func() {
		adaptiveAvgPoolBackward(act, gapDOut, actDIn)
	})

	gate := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	dFull := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	dGate := NewTensor(2, graph.Shape{C: 3, H: 4, W: 4})
	fill(gate.Data)
	assertZeroAllocs(t, "mulBackward", func() {
		mulBackward(act, gate, actDOut, dFull, dGate)
	})
}

// fill writes a deterministic non-trivial pattern.
func fill(v []float32) {
	for i := range v {
		v[i] = float32(i%7) - 3
	}
}
