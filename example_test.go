package convmeter_test

import (
	"fmt"

	"convmeter"
)

// ExampleMetricsOf shows the static metric extraction at the heart of
// ConvMeter: no network execution, just a graph traversal.
func ExampleMetricsOf() {
	g, err := convmeter.BuildModel("resnet50", 224)
	if err != nil {
		panic(err)
	}
	met, err := convmeter.MetricsOf(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("weights: %.0f\n", met.Weights)
	fmt.Printf("layers: %.0f\n", met.Layers)
	// Output:
	// weights: 25557032
	// layers: 107
}

// ExampleFitInference runs the complete modeling loop: benchmark sweep,
// four-coefficient fit, prediction for an unseen model.
func ExampleFitInference() {
	sc := convmeter.DefaultInferenceScenario(convmeter.A100(), 1)
	sc.Models = []string{"resnet18", "mobilenet_v2", "vgg11", "alexnet"}
	sc.Images = []int{64, 128}
	sc.Batches = []int{1, 8, 64}
	samples, err := convmeter.CollectInference(sc)
	if err != nil {
		panic(err)
	}
	model, err := convmeter.FitInference(samples)
	if err != nil {
		panic(err)
	}
	g, err := convmeter.BuildModel("resnet50", 224) // never benchmarked
	if err != nil {
		panic(err)
	}
	met, err := convmeter.MetricsOf(g)
	if err != nil {
		panic(err)
	}
	t := model.Predict(met, 64)
	fmt.Printf("prediction is positive and sub-second: %v\n", t > 0 && t < 1)
	// Output:
	// prediction is positive and sub-second: true
}

// ExampleTrainingModel_PredictStrongScaling demonstrates strong-scaling
// prediction: a fixed global batch spread over growing node counts.
func ExampleTrainingModel_PredictStrongScaling() {
	sc := convmeter.DefaultDistributedScenario(1)
	sc.Models = []string{"resnet18", "resnet50", "mobilenet_v2", "alexnet"}
	sc.Images = []int{128}
	sc.Batches = []int{16, 64}
	samples, err := convmeter.CollectTraining(sc)
	if err != nil {
		panic(err)
	}
	tm, err := convmeter.FitTraining(samples)
	if err != nil {
		panic(err)
	}
	g, err := convmeter.BuildModel("efficientnet_b0", 128)
	if err != nil {
		panic(err)
	}
	met, err := convmeter.MetricsOf(g)
	if err != nil {
		panic(err)
	}
	points, err := tm.PredictStrongScaling(met, 1024, 4, []int{1, 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("per-device batch at 4 nodes: %.0f\n", points[1].BatchPerDevice)
	fmt.Printf("4-node speedup in (1, 4): %v\n", points[1].Speedup > 1 && points[1].Speedup < 4)
	// Output:
	// per-device batch at 4 nodes: 64
	// 4-node speedup in (1, 4): true
}
