package convmeter

import (
	"bytes"
	"testing"
)

func TestFacadeEndToEndInference(t *testing.T) {
	g, err := BuildModel("resnet50", 224)
	if err != nil {
		t.Fatal(err)
	}
	met, err := MetricsOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if met.Weights != 25557032 {
		t.Fatalf("resnet50 weights = %g", met.Weights)
	}
	sc := DefaultInferenceScenario(A100(), 1)
	sc.Models = []string{"resnet18", "mobilenet_v2", "vgg11", "alexnet"}
	sc.Images = []int{64, 128}
	sc.Batches = []int{1, 8, 64}
	samples, err := CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitInference(samples)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(met, 64)
	if pred <= 0 || pred > 10 {
		t.Fatalf("implausible prediction %g s", pred)
	}
}

func TestFacadeTrainingAndScalability(t *testing.T) {
	sc := DefaultDistributedScenario(2)
	sc.Models = []string{"resnet18", "resnet50", "mobilenet_v2", "alexnet"}
	sc.Images = []int{128}
	sc.Batches = []int{16, 64}
	samples, err := CollectTraining(sc)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := FitTraining(samples)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildModel("efficientnet_b0", 128)
	if err != nil {
		t.Fatal(err)
	}
	met, err := MetricsOf(g)
	if err != nil {
		t.Fatal(err)
	}
	p1 := tm.PredictThroughput(met, 64, 4, 1)
	p8 := tm.PredictThroughput(met, 64, 32, 8)
	if p8 <= p1 {
		t.Fatalf("throughput should grow with nodes: %g vs %g", p1, p8)
	}
	tp, err := tm.TurningPoint(met, 64, 4, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if tp < 1 {
		t.Fatalf("turning point %d", tp)
	}
}

func TestFacadeCSVAndLOMO(t *testing.T) {
	sc := DefaultInferenceScenario(XeonCore(), 3)
	sc.Models = []string{"resnet18", "squeezenet1_1", "mobilenet_v2"}
	sc.Images = []int{64}
	sc.Batches = []int{1, 8}
	samples, err := CollectInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateInferenceLOMO(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.PerModel) != 3 {
		t.Fatalf("PerModel = %d", len(ev.PerModel))
	}
}

func TestFacadeBlocksAndExperiments(t *testing.T) {
	if len(BlockNames()) != 9 {
		t.Fatalf("blocks = %d", len(BlockNames()))
	}
	info, err := Block("MBConv")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildBlock("MBConv", info.NaturalHW)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalParams() <= 0 {
		t.Fatal("block without params")
	}
	res, err := RunExperiment("fig2", ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig2" || res.Text == "" {
		t.Fatal("experiment result malformed")
	}
}

func TestFacadeGraphBuilder(t *testing.T) {
	b, x := NewGraph("custom", Shape{C: 3, H: 32, W: 32})
	x = b.Conv(x, "c1", 16, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "fl")
	x = b.Linear(x, "fc", 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	met, err := MetricsOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if met.Layers != 2 {
		t.Fatalf("custom net layers = %g", met.Layers)
	}
}

func TestFacadeSimulatorAccess(t *testing.T) {
	sim, err := NewTrainSimulator(A100(), Cluster(), 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildModel("resnet18", 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sim.TrainStepExact(g, 16, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iter <= 0 {
		t.Fatal("zero step time")
	}
}
