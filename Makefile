# ConvMeter build & verification entry points. `make ci` is the one
# command that runs everything CI runs, in the same order.

GO       ?= go
FUZZTIME ?= 15s

.PHONY: build vet lint test race fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# convlint: the repo's own analyzer suite (see README "Static analysis
# & CI"). Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/convlint ./...

test:
	$(GO) test ./...

# The concurrent packages (ring all-reduce, parallel bench collector,
# data-parallel trainer) run under the race detector.
race:
	$(GO) test -race ./internal/allreduce/... ./internal/bench/... ./internal/train/...

# Short fuzz smoke of every fuzz target; seed corpora live under the
# packages' testdata/fuzz/ directories and always run as part of `test`.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadCSV -fuzztime $(FUZZTIME) ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzGraphJSON -fuzztime $(FUZZTIME) ./internal/graph

ci: build vet lint test race
