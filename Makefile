# ConvMeter build & verification entry points. `make ci` is the one
# command that runs everything CI runs, in the same order.

GO       ?= go
FUZZTIME ?= 15s

.PHONY: build vet lint test race fuzz obs-smoke obs-bench bench-snapshot bench-check chaos critpath-smoke dag-smoke alerts-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# convlint: the repo's own analyzer suite (see README "Static analysis
# & CI") plus go vet, so `make lint` is the complete static gate.
# Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/convlint ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent packages (ring all-reduce, parallel bench collector,
# data-parallel trainer, telemetry registry/tracer, ops server under
# ./internal/obs/..., drift monitor) run under the race detector, plus
# the lint package itself — its fixture suites drive the loader and
# analyzers concurrently enough to be worth the coverage.
race:
	$(GO) test -race ./internal/allreduce/... ./internal/bench/... ./internal/train/... ./internal/obs/... ./internal/driftwatch/... ./internal/lint/... ./internal/dagrun/...

# obs-smoke: run real experiments with the observability flags and
# validate the artefacts with cmd/obscheck — catches exposition/trace/
# drift formatting regressions that unit tests on the exporters alone
# would miss. Three stages: (1) the telemetry fixture run, (2) a live
# ops-server scrape under the race detector (concurrent /metrics and
# /drift requests against a running chaos experiment), (3) a slowdown
# chaos run whose drift artefact must report the detection, and a clean
# run whose artefact must not.
obs-smoke:
	rm -rf .obs-smoke && mkdir -p .obs-smoke
	$(GO) run ./cmd/experiments -run exttrainreal -quick \
		-metrics-out .obs-smoke/metrics.prom -trace-out .obs-smoke/trace.json > .obs-smoke/report.txt
	$(GO) run ./cmd/obscheck -metrics .obs-smoke/metrics.prom -trace .obs-smoke/trace.json
	$(GO) test -race -count=1 -run 'TestRunWithOpsServer' ./cmd/experiments
	$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed 7 -faults-profile slowdown \
		-drift-out .obs-smoke/drift-slow.json > .obs-smoke/report-slow.txt
	$(GO) run ./cmd/obscheck -drift .obs-smoke/drift-slow.json -require-drift
	$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed 7 -faults-profile none \
		-drift-out .obs-smoke/drift-clean.json > .obs-smoke/report-clean.txt
	$(GO) run ./cmd/obscheck -drift .obs-smoke/drift-clean.json -forbid-drift
	rm -rf .obs-smoke

# obs-bench: exporter and hot-path benchmarks; the Disabled* benchmarks
# must report 0 allocs/op (also asserted by TestDisabledPathZeroAllocs).
obs-bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/obs

# bench-snapshot: advance the perf baseline — run the benchmark suites,
# write the next snapshot in the committed BENCH_<n>.json trajectory
# and validate it with obscheck. The same run is also checked against
# the previous baseline, so a regressed build cannot silently become
# the new normal: fix the regression first, then re-snapshot.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -out BENCH_2.json -check BENCH_1.json
	$(GO) run ./cmd/obscheck -bench BENCH_2.json

# bench-check: re-run the suites and fail on a >15% ns/op regression
# against the committed baseline, or on any 0-allocs/op benchmark that
# started allocating (the dynamic half of the hotpath contract).
bench-check:
	$(GO) run ./cmd/benchsnap -check BENCH_2.json

# critpath-smoke: the distributed-tracing acceptance path. First the
# blame chaos suite under the race detector (seeded straggler must be
# deterministically blamed on both transports, clean seed must blame no
# one), then end-to-end: a slowdown chaos run (persistent straggler on
# worker 0) must export a critical-path report blaming worker 0 and a
# well-formed multi-worker trace (resolvable span parents, no negative
# durations, no cross-worker time-travel), and the clean run's report
# must blame nobody.
critpath-smoke:
	$(GO) test -race -count=1 -run 'TestCritpath' ./internal/train
	rm -rf .critpath-smoke && mkdir -p .critpath-smoke
	$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed 7 -faults-profile slowdown \
		-critpath-out .critpath-smoke/critpath-slow.json -trace-out .critpath-smoke/trace-slow.json \
		> .critpath-smoke/report-slow.txt
	$(GO) run ./cmd/obscheck -critpath .critpath-smoke/critpath-slow.json -require-blame 0
	$(GO) run ./cmd/obscheck -trace .critpath-smoke/trace-slow.json
	$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed 7 -faults-profile none \
		-critpath-out .critpath-smoke/critpath-clean.json > .critpath-smoke/report-clean.txt
	$(GO) run ./cmd/obscheck -critpath .critpath-smoke/critpath-clean.json -forbid-blame
	rm -rf .critpath-smoke

# alerts-smoke: the SLO-alerting acceptance path. First the live e2e
# matrix under the race detector (slowdown chaos run must fire the
# critical drift-burn-rate rule, gate /readyz to 503 and report the
# incident on /alerts and /api/query; the clean run must stay silent),
# then end-to-end through the real binary: the slowdown run's exported
# alert report must pass obscheck -alerts with drift-burn-rate required
# to have fired, and the clean run's report with it forbidden. The
# compressed -alerts-scale turns the 5m/1h SLO windows into a smoke-
# sized timebase; -sample-interval matches the run's few-second span.
alerts-smoke:
	$(GO) test -race -count=1 -run 'TestRunAlerts' ./cmd/experiments
	rm -rf .alerts-smoke && mkdir -p .alerts-smoke
	$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed 7 -faults-profile slowdown \
		-alerts-out .alerts-smoke/alerts-slow.json -alerts-scale 0.005 -sample-interval 25ms \
		> .alerts-smoke/report-slow.txt
	$(GO) run ./cmd/obscheck -alerts .alerts-smoke/alerts-slow.json -require-firing drift-burn-rate
	$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed 7 -faults-profile none \
		-alerts-out .alerts-smoke/alerts-clean.json -alerts-scale 0.005 -sample-interval 25ms \
		> .alerts-smoke/report-clean.txt
	$(GO) run ./cmd/obscheck -alerts .alerts-smoke/alerts-clean.json -forbid-firing drift-burn-rate
	rm -rf .alerts-smoke

# Short fuzz smoke of every fuzz target; seed corpora live under the
# packages' testdata/fuzz/ directories and always run as part of `test`.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadCSV -fuzztime $(FUZZTIME) ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzGraphJSON -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz FuzzParseConfig -fuzztime $(FUZZTIME) ./internal/lint
	$(GO) test -run '^$$' -fuzz FuzzParseManifest -fuzztime $(FUZZTIME) ./internal/dagrun

# chaos: the fault-injection suites under the race detector, then a
# fixed seed matrix of real end-to-end chaos runs (resilient training
# under crashes, drops and corruption) validated with
# obscheck -require-faults, which fails if no fault was injected.
CHAOS_SEEDS ?= 1 7 42
chaos:
	$(GO) test -race ./internal/faults/... ./internal/checkpoint/... ./internal/allreduce/... ./internal/train/... ./internal/experiments/...
	rm -rf .chaos-smoke && mkdir -p .chaos-smoke
	for seed in $(CHAOS_SEEDS); do \
		$(GO) run ./cmd/experiments -run exttrainfaults -quick -faults-seed $$seed \
			-metrics-out .chaos-smoke/metrics-$$seed.prom > .chaos-smoke/report-$$seed.txt || exit 1; \
		$(GO) run ./cmd/obscheck -metrics .chaos-smoke/metrics-$$seed.prom -require-faults || exit 1; \
	done
	rm -rf .chaos-smoke

# dag-smoke: the crash-resume acceptance path. First the resume
# matrices under the race detector (every node boundary and mid-node
# point, clean seed and chaos profile, resumed stats bit-identical),
# then end-to-end through the real binary: an uninterrupted chaos run,
# a -dag-crash run that must die with exit code 3 after committing its
# upstream manifests, a resume over the same -dag-dir whose report must
# be byte-identical to the uninterrupted run's, and obscheck -manifest
# validating the surviving manifest chain.
dag-smoke:
	$(GO) test -race -count=1 -run 'TestCrashResumeMatrix|TestDagResumeMatrix|TestRunDagCrashResume' ./internal/dagrun ./internal/experiments ./cmd/experiments
	rm -rf .dag-smoke && mkdir -p .dag-smoke
	$(GO) build -o .dag-smoke/experiments ./cmd/experiments
	.dag-smoke/experiments -run exttrainfaults -quick -seed 5 -faults-seed 11 \
		-dag-dir .dag-smoke/clean > .dag-smoke/report-clean.txt
	.dag-smoke/experiments -run exttrainfaults -quick -seed 5 -faults-seed 11 \
		-dag-dir .dag-smoke/run -dag-crash report@boundary \
		-dag-out .dag-smoke/crashed.json > /dev/null 2> .dag-smoke/crashed.txt; \
		test $$? -eq 3 || { echo "dag-smoke: crash run must exit 3"; exit 1; }
	.dag-smoke/experiments -run exttrainfaults -quick -seed 5 -faults-seed 11 \
		-dag-dir .dag-smoke/run -dag-out .dag-smoke/resumed.json > .dag-smoke/report-resumed.txt
	cmp .dag-smoke/report-clean.txt .dag-smoke/report-resumed.txt
	$(GO) run ./cmd/obscheck -manifest .dag-smoke/run
	rm -rf .dag-smoke

ci: build vet lint test race obs-smoke chaos critpath-smoke dag-smoke alerts-smoke bench-check
