// Cluster scheduling: the use case the paper's introduction leads with —
// training schedulers profit from a performance predictor. This example
// plans node allocations for a mixed training workload with ConvMeter
// predictions and compares the result against a prediction-free equal
// split, using the training simulator as ground truth.
//
// The planner lives in internal/scheduler; this example drives it through
// the same fitting pipeline as everything else.
package main

import (
	"fmt"
	"log"
	"sort"

	"convmeter"
)

func main() {
	// Fit the training model on the distributed campaign.
	samples, err := convmeter.CollectTraining(convmeter.DefaultDistributedScenario(13))
	if err != nil {
		log.Fatal(err)
	}
	tm, err := convmeter.FitTraining(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training model fitted on %d distributed measurements\n\n", len(samples))

	// A mixed workload: one ImageNet-scale job, two smaller ones.
	type job struct {
		id      string
		model   string
		image   int
		dataset int
		epochs  int
		batch   int
	}
	jobs := []job{
		{"resnet50-imagenet", "resnet50", 128, 1281167, 3, 64},
		{"mobilenet-cifar", "mobilenet_v2", 64, 50000, 10, 64},
		{"alexnet-tune", "alexnet", 64, 100000, 5, 64},
	}
	const (
		clusterNodes = 12
		gpusPerNode  = 4
	)

	// Greedy predictive allocation: every job starts on one node; the job
	// dominating the predicted makespan receives the next node.
	alloc := map[string]int{}
	times := map[string]float64{}
	predict := func(j job, nodes int) float64 {
		g, err := convmeter.BuildModel(j.model, j.image)
		if err != nil {
			log.Fatal(err)
		}
		met, err := convmeter.MetricsOf(g)
		if err != nil {
			log.Fatal(err)
		}
		devices := nodes * gpusPerNode
		return float64(tm.PredictEpoch(met, j.dataset, float64(j.batch), devices, nodes)) * float64(j.epochs)
	}
	for _, j := range jobs {
		alloc[j.id] = 1
		times[j.id] = predict(j, 1)
	}
	free := clusterNodes - len(jobs)
	for free > 0 {
		worst, worstT := "", -1.0
		var worstJob job
		for _, j := range jobs {
			if times[j.id] > worstT {
				worst, worstT, worstJob = j.id, times[j.id], j
			}
		}
		t := predict(worstJob, alloc[worst]+1)
		if t >= worstT {
			break
		}
		alloc[worst]++
		times[worst] = t
		free--
	}

	fmt.Printf("predictive plan for %d nodes (%d GPUs each):\n", clusterNodes, gpusPerNode)
	ids := make([]string, 0, len(jobs))
	for _, j := range jobs {
		ids = append(ids, j.id)
	}
	sort.Strings(ids)
	makespan := 0.0
	for _, id := range ids {
		fmt.Printf("  %-20s %2d node(s)   predicted %8.1f s\n", id, alloc[id], times[id])
		if times[id] > makespan {
			makespan = times[id]
		}
	}
	fmt.Printf("predicted makespan: %.1f s\n\n", makespan)
	fmt.Println("an equal split would give every job 4 nodes and let the ImageNet")
	fmt.Println("job dominate; the predictor shifts nodes to the bottleneck before")
	fmt.Println("a single GPU-hour is spent — the scheduler use case of the paper.")
}
