// Real data-parallel training: the distributed-training semantics the
// paper's performance model describes (§2: forward, backward, ring
// all-reduce gradient update), executed for real — worker goroutines
// compute gradients with the Go-native execution engine and synchronise
// them with an actual ring all-reduce, then every replica applies the
// identical SGD step.
package main

import (
	"fmt"
	"log"

	"convmeter"
	"convmeter/internal/train"
)

func main() {
	// A small trainable CNN over 12×12 inputs, 4 classes.
	b, x := convmeter.NewGraph("demo-cnn", convmeter.Shape{C: 3, H: 12, W: 12})
	x = b.Conv(x, "conv1", 8, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.MaxPool2d(x, "pool", 2, 2, 0)
	x = b.Conv(x, "conv2", 16, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.GlobalAvgPool(x, "gap")
	x = b.Flatten(x, "flat")
	x = b.Linear(x, "fc", 4)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	task, err := train.NewPrototypeTask(g, 4, 0.4, 1)
	if err != nil {
		log.Fatal(err)
	}
	const (
		workers = 4
		steps   = 20
		batch   = 8
	)
	fmt.Printf("training %s on %d workers (ring all-reduce), batch %d/worker:\n\n",
		"demo-cnn", workers, batch)
	res, err := train.DataParallel(g, train.Config{
		Workers: workers, GroupSize: 2, LR: 0.1, Seed: 7,
	}, steps, task.Source(batch))
	if err != nil {
		log.Fatal(err)
	}
	for i, l := range res.Losses {
		if i%4 == 0 || i == len(res.Losses)-1 {
			fmt.Printf("  step %2d: mean loss %.4f\n", i, l)
		}
	}
	fmt.Printf("\nreplica weight checksums after training (must all match):\n")
	for w, c := range res.Checksums {
		fmt.Printf("  worker %d: %.9g\n", w, c)
	}
	fmt.Println("\nevery gradient here crossed a real ring all-reduce — the")
	fmt.Println("communication pattern whose *cost* the ConvMeter gradient-update")
	fmt.Println("model (T_grad = c1·L + c2·W + c3·N) predicts.")
}
