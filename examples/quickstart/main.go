// Quickstart: extract ConvMeter metrics from a network, fit the
// inference performance model on a benchmark sweep, predict the runtime
// of an unseen model, and check the accuracy with the paper's
// leave-one-model-out protocol.
package main

import (
	"fmt"
	"log"

	"convmeter"
)

func main() {
	// ConvMeter works on static graph metrics — no network execution.
	g, err := convmeter.BuildModel("resnet50", 224)
	if err != nil {
		log.Fatal(err)
	}
	met, err := convmeter.MetricsOf(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ResNet-50 @ 224px:")
	fmt.Printf("  FLOPs   %.3g\n", met.FLOPs)
	fmt.Printf("  Inputs  %.3g elements\n", met.Inputs)
	fmt.Printf("  Outputs %.3g elements\n", met.Outputs)
	fmt.Printf("  Weights %.0f\n", met.Weights)
	fmt.Printf("  Layers  %.0f\n", met.Layers)

	// Collect a benchmark dataset. ResNet-50 is deliberately excluded
	// from the sweep: the fitted model has never seen it.
	sc := convmeter.DefaultInferenceScenario(convmeter.A100(), 1)
	var withoutTarget []string
	for _, m := range sc.Models {
		if m != "resnet50" {
			withoutTarget = append(withoutTarget, m)
		}
	}
	sc.Models = withoutTarget
	samples, err := convmeter.CollectInference(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted on %d benchmark points from %d other ConvNets\n",
		len(samples), len(sc.Models))

	model, err := convmeter.FitInference(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted ResNet-50 inference time (unseen model):")
	for _, b := range []int{1, 16, 64, 256, 1024} {
		t := float64(model.Predict(met, float64(b)))
		fmt.Printf("  batch %4d: %9.3f ms  (%8.0f images/s)\n",
			b, t*1e3, float64(b)/t)
	}

	// How accurate is the model overall? The paper's LOMO protocol.
	full, err := convmeter.CollectInference(convmeter.DefaultInferenceScenario(convmeter.A100(), 1))
	if err != nil {
		log.Fatal(err)
	}
	ev, err := convmeter.EvaluateInferenceLOMO(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleave-one-model-out accuracy over the zoo: %s\n", ev.Overall)
}
