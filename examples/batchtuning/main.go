// Batch-size tuning: the paper's §4.3 use case. ConvMeter's batch-size
// parameter lets it predict throughput for any batch size — including
// ones that exceed the training device's memory, which is useful when
// deciding whether a bigger-memory GPU or gradient accumulation would
// pay off.
package main

import (
	"fmt"
	"log"

	"convmeter"
)

func main() {
	const imageSize = 128

	samples, err := convmeter.CollectTraining(convmeter.DefaultSingleGPUScenario(5))
	if err != nil {
		log.Fatal(err)
	}
	tm, err := convmeter.FitTraining(samples)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := convmeter.NewTrainSimulator(convmeter.A100(), convmeter.Cluster(), 0, 0, 5)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"resnet50", "squeezenet1_0"} {
		g, err := convmeter.BuildModel(name, imageSize)
		if err != nil {
			log.Fatal(err)
		}
		met, err := convmeter.MetricsOf(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @ %dpx on one A100-80GB:\n", name, imageSize)
		fmt.Printf("  %-7s %16s %10s\n", "batch", "pred images/s", "fits?")
		var prev float64
		for batch := 32; batch <= 8192; batch *= 2 {
			tput := tm.PredictThroughput(met, float64(batch), 1, 1)
			fits := "yes"
			if !sim.Fits(g, batch) {
				fits = "NO — prediction only"
			}
			note := ""
			if prev > 0 && tput/prev < 1.05 {
				note = "  <- diminishing returns"
			}
			fmt.Printf("  %-7d %16.0f %10s%s\n", batch, tput, fits, note)
			prev = tput
		}
		fmt.Println()
	}
	fmt.Println("Past the saturation knee, extra batch (or extra memory) buys almost")
	fmt.Println("no throughput — the knee location is exactly what a scheduler or a")
	fmt.Println("hardware-upgrade decision needs, and ConvMeter locates it without")
	fmt.Println("ever allocating an out-of-memory batch.")
}
