// Pipeline model parallelism: the extension the paper sketches in §3 —
// because ConvMeter predicts subgraphs/blocks, it can plan model-parallel
// deployments. This example partitions large ConvNets into pipeline
// stages, predicts each stage from the fitted block-wise model, and picks
// the best stage count without ever running a pipeline.
package main

import (
	"fmt"
	"log"

	"convmeter"
)

func main() {
	// Fit the block-wise inference model (the paper's Table 2 setting).
	samples, err := convmeter.CollectBlocks(convmeter.DefaultBlockScenario(7))
	if err != nil {
		log.Fatal(err)
	}
	model, err := convmeter.FitInference(samples)
	if err != nil {
		log.Fatal(err)
	}
	pred := &convmeter.PipelinePredictor{Model: model, Link: convmeter.NVLinkStageLink()}
	fmt.Printf("block-wise model fitted on %d measurements\n\n", len(samples))

	const (
		batch      = 64
		microBatch = 8
	)
	for _, name := range []string{"vgg16", "resnet50"} {
		g, err := convmeter.BuildModel(name, 224)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @ 224px, batch %d in micro-batches of %d:\n", name, batch, microBatch)
		for _, k := range []int{1, 2, 4, 6} {
			stages, err := convmeter.PartitionPipeline(g, k)
			if err != nil {
				log.Fatal(err)
			}
			t, err := pred.Predict(stages, batch, microBatch)
			if err != nil {
				log.Fatal(err)
			}
			// Show the per-stage balance for the 4-way split.
			balance := ""
			if k == 4 {
				balance = "  stage GFLOPs:"
				for _, st := range stages {
					balance += fmt.Sprintf(" %.1f", st.Met.FLOPs/1e9)
				}
			}
			fmt.Printf("  %d stage(s): %8.0f images/s%s\n", k, float64(batch)/t, balance)
		}
		bestK, bestT, err := pred.BestStageCount(g, 8, batch, microBatch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> plan: %d stages (%.0f images/s), chosen from metrics alone\n\n", bestK, bestT)
	}
}
