// NAS-style block ranking: the paper's §4.1.2 use case. Neural
// architecture search needs fast runtime estimates for candidate blocks;
// ConvMeter predicts block latency from static metrics after fitting on
// measurements of *other* blocks, so new candidates never need to be
// benchmarked.
package main

import (
	"fmt"
	"log"
	"sort"

	"convmeter"
	"convmeter/internal/nas"
)

func main() {
	// Benchmark all Table-2 blocks except the candidates under study.
	candidates := map[string]bool{"MBConv": true, "InvertedResidual3": true, "Bottleneck4": true}
	sc := convmeter.DefaultBlockScenario(7)
	var trainBlocks []string
	for _, b := range sc.Blocks {
		if !candidates[b] {
			trainBlocks = append(trainBlocks, b)
		}
	}
	sc.Blocks = trainBlocks
	samples, err := convmeter.CollectBlocks(sc)
	if err != nil {
		log.Fatal(err)
	}
	model, err := convmeter.FitInference(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted block-latency model on %d measurements of %d blocks\n\n",
		len(samples), len(trainBlocks))

	// Rank the unseen candidate blocks at their natural placement for a
	// batch-64 workload: latency per unit of useful compute.
	type ranked struct {
		name    string
		latency float64 // predicted ms at batch 64
		gflops  float64 // per-image workload
		params  float64
	}
	var rank []ranked
	for name := range candidates {
		info, err := convmeter.Block(name)
		if err != nil {
			log.Fatal(err)
		}
		g, err := convmeter.BuildBlock(name, info.NaturalHW)
		if err != nil {
			log.Fatal(err)
		}
		met, err := convmeter.MetricsOf(g)
		if err != nil {
			log.Fatal(err)
		}
		rank = append(rank, ranked{
			name:    name,
			latency: float64(model.Predict(met, 64)) * 1e3,
			gflops:  float64(met.FLOPs) / 1e9,
			params:  float64(met.Weights),
		})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].latency < rank[j].latency })
	fmt.Println("candidate blocks ranked by predicted batch-64 latency (never measured):")
	for i, r := range rank {
		fmt.Printf("  %d. %-20s %8.3f ms   %6.2f GFLOP/img   %8.0f params\n",
			i+1, r.name, r.latency, r.gflops, r.params)
	}
	fmt.Println("\na NAS loop would issue one such prediction per candidate —")
	fmt.Println("microseconds of arithmetic instead of a device benchmark.")

	// Part 2: a full latency-constrained architecture search over a
	// MobileNet-style space, every candidate evaluated by prediction.
	sweep, err := convmeter.CollectInference(convmeter.DefaultInferenceScenario(convmeter.A100(), 7))
	if err != nil {
		log.Fatal(err)
	}
	full, err := convmeter.FitInference(sweep)
	if err != nil {
		log.Fatal(err)
	}
	const (
		img    = 128
		batch  = 64
		budget = 0.0015 // 1.5 ms at batch 64
	)
	res, err := nas.Search(nas.PredictedEvaluator(full, batch), img, budget, 16, 6, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency-constrained search (budget %.1f ms @ batch %d, %d blocks):\n",
		budget*1e3, batch, nas.NumBlocks())
	fmt.Printf("  evaluated %d candidates (%d feasible) — all by prediction\n", res.Evaluated, res.Feasible)
	fmt.Printf("  winner: %.2f GFLOP/img, %.1fM params, predicted %.3f ms\n",
		res.BestMetrics.FLOPs/1e9, res.BestMetrics.Weights/1e6, res.BestLatency*1e3)
}
