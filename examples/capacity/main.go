// Infrastructure planning: the paper's §4.3 use case. Given a model and
// a training corpus, how many nodes are worth allocating before
// communication overhead eats the speedup? ConvMeter predicts epoch time
// and throughput per node count and finds the diminishing-return turning
// point — before any cluster time is spent.
package main

import (
	"fmt"
	"log"

	"convmeter"
)

func main() {
	const (
		imageSize   = 128
		batch       = 64      // per-device batch
		gpusPerNode = 4       // the paper's node layout
		dataset     = 1281167 // ImageNet-1k training images
		epochs      = 90      // a standard ResNet training schedule
	)

	// Fit the training model on the distributed benchmark campaign.
	samples, err := convmeter.CollectTraining(convmeter.DefaultDistributedScenario(3))
	if err != nil {
		log.Fatal(err)
	}
	tm, err := convmeter.FitTraining(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training model fitted on %d distributed measurements\n\n", len(samples))

	for _, name := range []string{"resnet50", "alexnet"} {
		g, err := convmeter.BuildModel(name, imageSize)
		if err != nil {
			log.Fatal(err)
		}
		met, err := convmeter.MetricsOf(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @ %dpx, batch %d/GPU, %d GPUs/node:\n", name, imageSize, batch, gpusPerNode)
		fmt.Printf("  %-6s %14s %14s %12s\n", "nodes", "images/s", "epoch", "90 epochs")
		prev := 0.0
		for nodes := 1; nodes <= 16; nodes *= 2 {
			devices := nodes * gpusPerNode
			tput := tm.PredictThroughput(met, batch, devices, nodes)
			epoch := tm.PredictEpoch(met, dataset, batch, devices, nodes)
			marker := ""
			if prev > 0 {
				gain := tput/prev - 1
				marker = fmt.Sprintf("  (+%.0f%% vs previous)", gain*100)
			}
			fmt.Printf("  %-6d %14.0f %13.1fs %11.1fh%s\n",
				nodes, tput, epoch, epoch*epochs/3600, marker)
			prev = tput
		}
		tp, err := tm.TurningPoint(met, batch, gpusPerNode, 32, 0.10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  turning point (<10%% throughput gain per added node): %d node(s)\n\n", tp)
	}
	fmt.Println("AlexNet's 61M parameters make its gradient synchronisation the")
	fmt.Println("bottleneck, so it saturates earlier than ResNet-50 — the paper's")
	fmt.Println("Figure 8 observation, available here before renting a single node.")
}
