package convmeter

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (regenerating the corresponding experiment end to end in its
// Quick configuration), plus micro-benchmarks of the pipeline stages.
// Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale tables are produced by cmd/experiments and recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"math/rand"
	"testing"

	"convmeter/internal/allreduce"
	"convmeter/internal/exec"
	"convmeter/internal/experiments"
	"convmeter/internal/hwreal"
	"convmeter/internal/train"
)

// benchCfg is the reduced experiment configuration used for benches so a
// full -bench=. sweep stays fast while exercising every code path.
var benchCfg = experiments.Config{Seed: 1, Quick: true}

// runExperimentBench drives one paper experiment per iteration.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig2MetricAblation regenerates Figure 2 (FLOPs vs Inputs vs
// Outputs vs combined inference prediction).
func BenchmarkFig2MetricAblation(b *testing.B) { runExperimentBench(b, "fig2") }

// BenchmarkTable1Inference regenerates Table 1 / Figure 3 (per-ConvNet
// inference accuracy on CPU and GPU).
func BenchmarkTable1Inference(b *testing.B) { runExperimentBench(b, "table1") }

// BenchmarkTable2Blocks regenerates Table 2 / Figure 4 (block-wise
// prediction).
func BenchmarkTable2Blocks(b *testing.B) { runExperimentBench(b, "table2") }

// BenchmarkTable3SingleGPU regenerates the single-GPU half of Table 3 /
// Figure 5.
func BenchmarkTable3SingleGPU(b *testing.B) { runExperimentBench(b, "table3single") }

// BenchmarkFig6DIPPM regenerates Figure 6 (ConvMeter vs the DIPPM
// surrogate).
func BenchmarkFig6DIPPM(b *testing.B) { runExperimentBench(b, "fig6") }

// BenchmarkTable3Distributed regenerates the distributed half of Table 3
// / Figure 7.
func BenchmarkTable3Distributed(b *testing.B) { runExperimentBench(b, "table3multi") }

// BenchmarkFig8NodeScaling regenerates Figure 8 (throughput vs nodes).
func BenchmarkFig8NodeScaling(b *testing.B) { runExperimentBench(b, "fig8") }

// BenchmarkFig9BatchScaling regenerates Figure 9 (throughput vs batch).
func BenchmarkFig9BatchScaling(b *testing.B) { runExperimentBench(b, "fig9") }

// BenchmarkAblationDatasetSize regenerates the modeling-effort and design
// ablations (§3.4 / Table 4 context).
func BenchmarkAblationDatasetSize(b *testing.B) { runExperimentBench(b, "ablation") }

// --- Pipeline micro-benchmarks ---------------------------------------------

// BenchmarkBuildModel measures graph construction for representative
// zoo members.
func BenchmarkBuildModel(b *testing.B) {
	for _, name := range []string{"alexnet", "resnet50", "densenet121", "efficientnet_b0"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildModel(name, 224); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetricsExtraction measures static metric extraction — the
// operation ConvMeter performs instead of running the network.
func BenchmarkMetricsExtraction(b *testing.B) {
	g, err := BuildModel("resnet50", 224)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MetricsOf(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitInference measures fitting the four-coefficient model on a
// paper-sized dataset — the paper's "modeling effort" (§3.4, Table 4).
func BenchmarkFitInference(b *testing.B) {
	sc := DefaultInferenceScenario(A100(), 1)
	samples, err := CollectInference(sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitInference(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictInference measures a single prediction — the operation
// NAS loops would issue per candidate.
func BenchmarkPredictInference(b *testing.B) {
	sc := DefaultInferenceScenario(A100(), 1)
	sc.Models = []string{"resnet18", "mobilenet_v2", "vgg11"}
	sc.Images = []int{64, 128}
	sc.Batches = []int{1, 8, 64}
	samples, err := CollectInference(sc)
	if err != nil {
		b.Fatal(err)
	}
	m, err := FitInference(samples)
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildModel("resnet50", 224)
	if err != nil {
		b.Fatal(err)
	}
	met, err := MetricsOf(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Predict(met, 64) <= 0 {
			b.Fatal("bad prediction")
		}
	}
}

// BenchmarkSimulatedTrainStep measures one simulated distributed training
// step (the measurement generator).
func BenchmarkSimulatedTrainStep(b *testing.B) {
	sim, err := NewTrainSimulator(A100(), Cluster(), 0.05, 0.15, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildModel("resnet50", 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.TrainStep(g, 32, 16, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionExperiments drives the future-work extensions
// (ViT, edge, pipeline, strong scaling) in their quick configuration.
func BenchmarkExtensionExperiments(b *testing.B) {
	for _, id := range []string{"extvit", "extedge", "extpipeline", "extstrong"} {
		b.Run(id, func(b *testing.B) { runExperimentBench(b, id) })
	}
}

// BenchmarkRealExecution measures the Go-native execution engine — the
// actual kernels the hwreal backend times (a real inference per
// iteration).
func BenchmarkRealExecution(b *testing.B) {
	for _, name := range []string{"squeezenet1_1", "resnet18", "mobilenet_v3_small"} {
		b.Run(name, func(b *testing.B) {
			g, err := BuildModel(name, 32)
			if err != nil {
				b.Fatal(err)
			}
			e, err := exec.NewExecutor(g, 1)
			if err != nil {
				b.Fatal(err)
			}
			in, err := e.RandomInput(1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealMeasurement measures the hwreal measurement path end to
// end (executor construction + warmup + timed run).
func BenchmarkRealMeasurement(b *testing.B) {
	g, err := BuildModel("squeezenet1_1", 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hwreal.Measure(g, 1, 0, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingAllReduce measures the real ring all-reduce across worker
// counts at a ResNet-18-sized gradient payload (11.7 M floats).
func BenchmarkRingAllReduce(b *testing.B) {
	const length = 11_700_000 / 8 // per-benchmark-size kept moderate
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			base := make([][]float32, workers)
			rng := rand.New(rand.NewSource(1))
			for w := range base {
				v := make([]float32, length)
				for i := range v {
					v[i] = float32(rng.NormFloat64())
				}
				base[w] = v
			}
			scratch := make([][]float32, workers)
			b.SetBytes(int64(length) * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for w := range base {
					scratch[w] = append(scratch[w][:0], base[w]...)
				}
				b.StartTimer()
				if err := allreduce.Ring(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealGradients measures a full real training computation
// (forward + loss + backward) on a small CNN.
func BenchmarkRealGradients(b *testing.B) {
	bld, x := NewGraph("benchnet", Shape{C: 3, H: 16, W: 16})
	x = bld.Conv(x, "c1", 8, 3, 1, 1)
	x = bld.ReLU(x, "r1")
	x = bld.Conv(x, "c2", 16, 3, 2, 1)
	x = bld.ReLU(x, "r2")
	x = bld.GlobalAvgPool(x, "gap")
	x = bld.Flatten(x, "fl")
	x = bld.Linear(x, "fc", 10)
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	e, err := exec.NewExecutor(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	in, err := e.RandomInput(8)
	if err != nil {
		b.Fatal(err)
	}
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Gradients(in, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataParallelStep measures one full data-parallel training step
// (worker gradients + real ring all-reduce + update) across worker
// counts.
func BenchmarkDataParallelStep(b *testing.B) {
	bld, x := NewGraph("dpbench", Shape{C: 2, H: 8, W: 8})
	x = bld.Conv(x, "c1", 4, 3, 1, 1)
	x = bld.ReLU(x, "r1")
	x = bld.GlobalAvgPool(x, "gap")
	x = bld.Flatten(x, "fl")
	x = bld.Linear(x, "fc", 3)
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			task, err := train.NewPrototypeTask(g, 3, 0.3, 1)
			if err != nil {
				b.Fatal(err)
			}
			src := task.Source(4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := train.DataParallel(g, train.Config{Workers: workers, LR: 0.05, Seed: 1}, 1, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectInferenceSweep measures dataset generation across
// batch counts.
func BenchmarkCollectInferenceSweep(b *testing.B) {
	for _, nModels := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("models=%d", nModels), func(b *testing.B) {
			sc := DefaultInferenceScenario(A100(), 1)
			sc.Models = sc.Models[:nModels]
			sc.Images = []int{64, 128}
			sc.Batches = []int{1, 8, 64}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CollectInference(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
