package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeDrift drops a drift snapshot fixture and returns its path.
func writeDrift(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "drift.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDrift(t *testing.T) {
	drifting := `{"streams":[{"model":"trainreal","phase":"iter","state":"drifting","pairs":10,"events":2}],"events_total":2}`
	clean := `{"streams":[{"model":"trainreal","phase":"iter","state":"ok","pairs":10,"events":0}],"events_total":0}`
	empty := `{"streams":[],"events_total":0}`

	cases := []struct {
		name                      string
		doc                       string
		requireDrift, forbidDrift bool
		wantErr                   bool
	}{
		{"drifting-plain", drifting, false, false, false},
		{"drifting-required", drifting, true, false, false},
		{"drifting-forbidden", drifting, false, true, true},
		{"clean-plain", clean, false, false, false},
		{"clean-required", clean, true, false, true},
		{"clean-forbidden", clean, false, true, false},
		{"empty-forbidden", empty, false, true, false},
		{"empty-required", empty, true, false, true},
		{"bad-json", `{"streams":`, false, false, true},
		{"missing-total", `{"streams":[]}`, false, false, true},
		{"unknown-state", `{"streams":[{"model":"a","phase":"fwd","state":"panic","pairs":1,"events":0}],"events_total":0}`, false, false, true},
		{"no-model", `{"streams":[{"phase":"fwd","state":"ok","pairs":1,"events":0}],"events_total":0}`, false, false, true},
		{"total-mismatch", `{"streams":[{"model":"a","phase":"fwd","state":"ok","pairs":1,"events":1}],"events_total":3}`, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkDrift(writeDrift(t, tc.doc), tc.requireDrift, tc.forbidDrift)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkDrift err = %v, wantErr = %t", err, tc.wantErr)
			}
		})
	}
}

func TestCheckBench(t *testing.T) {
	good := `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","goos":"linux","goarch":"amd64","benchtime":"1x",
		"benchmarks":[
			{"name":"BenchmarkA-8","iterations":100,"ns_per_op":123.5,"bytes_per_op":0,"allocs_per_op":0},
			{"name":"BenchmarkB-8","iterations":1,"ns_per_op":5000,"bytes_per_op":64,"allocs_per_op":2,"mb_per_s":12.5}]}`
	cases := []struct {
		name    string
		doc     string
		wantErr bool
	}{
		{"good", good, false},
		{"bad-json", `{"schema":`, true},
		{"wrong-schema", `{"schema":"v0","go":"go1.24.0","benchmarks":[{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"no-go-stamp", `{"schema":"convmeter/bench-snapshot/v1","benchmarks":[{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"empty", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[]}`, true},
		{"unsorted", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkB","iterations":1,"ns_per_op":1},{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"duplicate", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1,"ns_per_op":1},{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"zero-iterations", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":0,"ns_per_op":1}]}`, true},
		{"missing-ns", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1}]}`, true},
		{"zero-ns", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1,"ns_per_op":0}]}`, true},
		{"negative-allocs", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1,"ns_per_op":1,"allocs_per_op":-1}]}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bench.json")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			err := checkBench(path)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkBench err = %v, wantErr = %t", err, tc.wantErr)
			}
		})
	}
}
