package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeDrift drops a drift snapshot fixture and returns its path.
func writeDrift(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "drift.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDrift(t *testing.T) {
	drifting := `{"streams":[{"model":"trainreal","phase":"iter","state":"drifting","pairs":10,"events":2}],"events_total":2}`
	clean := `{"streams":[{"model":"trainreal","phase":"iter","state":"ok","pairs":10,"events":0}],"events_total":0}`
	empty := `{"streams":[],"events_total":0}`

	cases := []struct {
		name                      string
		doc                       string
		requireDrift, forbidDrift bool
		wantErr                   bool
	}{
		{"drifting-plain", drifting, false, false, false},
		{"drifting-required", drifting, true, false, false},
		{"drifting-forbidden", drifting, false, true, true},
		{"clean-plain", clean, false, false, false},
		{"clean-required", clean, true, false, true},
		{"clean-forbidden", clean, false, true, false},
		{"empty-forbidden", empty, false, true, false},
		{"empty-required", empty, true, false, true},
		{"bad-json", `{"streams":`, false, false, true},
		{"missing-total", `{"streams":[]}`, false, false, true},
		{"unknown-state", `{"streams":[{"model":"a","phase":"fwd","state":"panic","pairs":1,"events":0}],"events_total":0}`, false, false, true},
		{"no-model", `{"streams":[{"phase":"fwd","state":"ok","pairs":1,"events":0}],"events_total":0}`, false, false, true},
		{"total-mismatch", `{"streams":[{"model":"a","phase":"fwd","state":"ok","pairs":1,"events":1}],"events_total":3}`, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkDrift(writeDrift(t, tc.doc), tc.requireDrift, tc.forbidDrift)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkDrift err = %v, wantErr = %t", err, tc.wantErr)
			}
		})
	}
}
