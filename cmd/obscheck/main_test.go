package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"convmeter/internal/dagrun"
	"convmeter/internal/obs"
	"convmeter/internal/obs/alert"
	"convmeter/internal/obs/tsdb"
)

// writeDrift drops a drift snapshot fixture and returns its path.
func writeDrift(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "drift.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDrift(t *testing.T) {
	drifting := `{"streams":[{"model":"trainreal","phase":"iter","state":"drifting","pairs":10,"events":2}],"events_total":2}`
	clean := `{"streams":[{"model":"trainreal","phase":"iter","state":"ok","pairs":10,"events":0}],"events_total":0}`
	empty := `{"streams":[],"events_total":0}`

	cases := []struct {
		name                      string
		doc                       string
		requireDrift, forbidDrift bool
		wantErr                   bool
	}{
		{"drifting-plain", drifting, false, false, false},
		{"drifting-required", drifting, true, false, false},
		{"drifting-forbidden", drifting, false, true, true},
		{"clean-plain", clean, false, false, false},
		{"clean-required", clean, true, false, true},
		{"clean-forbidden", clean, false, true, false},
		{"empty-forbidden", empty, false, true, false},
		{"empty-required", empty, true, false, true},
		{"bad-json", `{"streams":`, false, false, true},
		{"missing-total", `{"streams":[]}`, false, false, true},
		{"unknown-state", `{"streams":[{"model":"a","phase":"fwd","state":"panic","pairs":1,"events":0}],"events_total":0}`, false, false, true},
		{"no-model", `{"streams":[{"phase":"fwd","state":"ok","pairs":1,"events":0}],"events_total":0}`, false, false, true},
		{"total-mismatch", `{"streams":[{"model":"a","phase":"fwd","state":"ok","pairs":1,"events":1}],"events_total":3}`, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkDrift(writeDrift(t, tc.doc), tc.requireDrift, tc.forbidDrift)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkDrift err = %v, wantErr = %t", err, tc.wantErr)
			}
		})
	}
}

// realManifestDir runs a small DAG with a durable directory so the
// fixture is exactly what experiments -dag-dir commits, not a
// hand-rolled imitation that could drift from the writer.
func realManifestDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	r, err := dagrun.New(dagrun.Config{Dir: dir, Code: "obscheck-test@v1", Workers: 2}, []dagrun.Node{
		{ID: "fit", Run: func(dagrun.Inputs) (any, error) { return map[string]float64{"coef": 1.5}, nil }},
		{ID: "report", Deps: []string{"fit"}, Run: func(in dagrun.Inputs) (any, error) {
			var fit map[string]float64
			if err := in.Decode("fit", &fit); err != nil {
				return nil, err
			}
			return "coef " + "ok", nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// mutateManifest rewrites one top-level field of dir/node.json.
func mutateManifest(t *testing.T, dir, node string, mutate func(map[string]json.RawMessage)) {
	t.Helper()
	path := filepath.Join(dir, node+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	mutate(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckManifests(t *testing.T) {
	t.Run("real-run-passes", func(t *testing.T) {
		if err := checkManifests(realManifestDir(t)); err != nil {
			t.Fatalf("real dag run rejected: %v", err)
		}
	})
	t.Run("empty-dir", func(t *testing.T) {
		if err := checkManifests(t.TempDir()); err == nil {
			t.Fatal("empty directory accepted; a run that committed nothing has nothing to audit")
		}
	})
	t.Run("missing-dir", func(t *testing.T) {
		if err := checkManifests(filepath.Join(t.TempDir(), "nope")); err == nil {
			t.Fatal("nonexistent directory accepted")
		}
	})
	t.Run("not-json", func(t *testing.T) {
		dir := realManifestDir(t)
		if err := os.WriteFile(filepath.Join(dir, "fit.json"), []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := checkManifests(dir); err == nil {
			t.Fatal("truncated manifest accepted")
		}
	})
	mutations := []struct {
		name   string
		node   string
		mutate func(map[string]json.RawMessage)
		want   string
	}{
		{"wrong-schema", "fit", func(d map[string]json.RawMessage) { d["schema"] = json.RawMessage(`"v0"`) }, "schema"},
		{"node-mismatch", "fit", func(d map[string]json.RawMessage) { d["node"] = json.RawMessage(`"other"`) }, "stem"},
		{"short-fingerprint", "fit", func(d map[string]json.RawMessage) { d["fingerprint"] = json.RawMessage(`"abc"`) }, "fingerprint"},
		{"upper-hash", "fit", func(d map[string]json.RawMessage) {
			d["hash"] = json.RawMessage(`"` + strings.Repeat("A", 64) + `"`)
		}, "hash"},
		{"zero-attempt", "fit", func(d map[string]json.RawMessage) { d["attempt"] = json.RawMessage(`0`) }, "attempt"},
		{"no-output", "fit", func(d map[string]json.RawMessage) { delete(d, "output") }, "output"},
		{"stale-input-hash", "report", func(d map[string]json.RawMessage) {
			d["inputs"] = json.RawMessage(`{"fit":"` + strings.Repeat("0", 64) + `"}`)
		}, "stale or tampered"},
		{"dangling-input", "report", func(d map[string]json.RawMessage) {
			d["inputs"] = json.RawMessage(`{"ghost":"` + strings.Repeat("0", 64) + `"}`)
		}, "chain is broken"},
		{"malformed-input-hash", "report", func(d map[string]json.RawMessage) {
			d["inputs"] = json.RawMessage(`{"fit":"xyz"}`)
		}, "input hash"},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			dir := realManifestDir(t)
			mutateManifest(t, dir, tc.node, tc.mutate)
			err := checkManifests(dir)
			if err == nil {
				t.Fatal("mutated manifest accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	t.Run("cycle", func(t *testing.T) {
		dir := realManifestDir(t)
		// Point fit's inputs back at report, matching report's committed
		// hash so only the cycle check can catch it.
		var rep struct {
			Hash string `json:"hash"`
		}
		data, err := os.ReadFile(filepath.Join(dir, "report.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		mutateManifest(t, dir, "fit", func(d map[string]json.RawMessage) {
			d["inputs"] = json.RawMessage(`{"report":"` + rep.Hash + `"}`)
		})
		err = checkManifests(dir)
		if err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("cycle not detected: %v", err)
		}
	})
}

func TestCheckBench(t *testing.T) {
	good := `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","goos":"linux","goarch":"amd64","benchtime":"1x",
		"benchmarks":[
			{"name":"BenchmarkA-8","iterations":100,"ns_per_op":123.5,"bytes_per_op":0,"allocs_per_op":0},
			{"name":"BenchmarkB-8","iterations":1,"ns_per_op":5000,"bytes_per_op":64,"allocs_per_op":2,"mb_per_s":12.5}]}`
	cases := []struct {
		name    string
		doc     string
		wantErr bool
	}{
		{"good", good, false},
		{"bad-json", `{"schema":`, true},
		{"wrong-schema", `{"schema":"v0","go":"go1.24.0","benchmarks":[{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"no-go-stamp", `{"schema":"convmeter/bench-snapshot/v1","benchmarks":[{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"empty", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[]}`, true},
		{"unsorted", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkB","iterations":1,"ns_per_op":1},{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"duplicate", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1,"ns_per_op":1},{"name":"BenchmarkA","iterations":1,"ns_per_op":1}]}`, true},
		{"zero-iterations", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":0,"ns_per_op":1}]}`, true},
		{"missing-ns", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1}]}`, true},
		{"zero-ns", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1,"ns_per_op":0}]}`, true},
		{"negative-allocs", `{"schema":"convmeter/bench-snapshot/v1","go":"go1.24.0","benchmarks":[
			{"name":"BenchmarkA","iterations":1,"ns_per_op":1,"allocs_per_op":-1}]}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bench.json")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			err := checkBench(path)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkBench err = %v, wantErr = %t", err, tc.wantErr)
			}
		})
	}
}

// realAlertReport drives a real obs+tsdb+alert stack through a fire and
// a resolve on a manual clock and exports its report, so the fixture is
// exactly what experiments -alerts-out writes, not a hand-rolled
// imitation that could drift from the writer.
func realAlertReport(t *testing.T) string {
	t.Helper()
	o := obs.New()
	now := time.Duration(0)
	db := tsdb.New(tsdb.Config{Obs: o, Clock: func() time.Duration { return now }, Capacity: 256})
	g := o.Gauge("convmeter_alertfix_gauge", "fixture gauge")
	e := alert.New(alert.Config{Obs: o, DB: db, Rules: []alert.Rule{
		alert.ThresholdValue("fixture-hot", alert.SevCritical, "convmeter_alertfix_gauge",
			alert.OpAbove, 5, 10*time.Second),
		alert.ThresholdValue("fixture-quiet", alert.SevWarning, "convmeter_alertfix_gauge",
			alert.OpAbove, 1e9, 10*time.Second),
	}})
	if e == nil {
		t.Fatal("alert.New returned nil for an enabled config")
	}
	tick := func(v float64) {
		now += time.Second
		g.Set(v)
		db.Sync()
		db.Sample(now)
		e.Eval(now)
	}
	for i := 0; i < 5; i++ {
		tick(1) // quiet
	}
	for i := 0; i < 5; i++ {
		tick(10) // fire fixture-hot
	}
	for i := 0; i < 15; i++ {
		tick(1) // recover: the 10s window must drain below the threshold
	}
	path := filepath.Join(t.TempDir(), "alerts.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteJSON(f, now); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAlertsRealReport(t *testing.T) {
	path := realAlertReport(t)
	if err := checkAlerts(path, "", ""); err != nil {
		t.Fatalf("real report rejected: %v", err)
	}
	if err := checkAlerts(path, "fixture-hot", ""); err != nil {
		t.Errorf("require-firing on a fired rule rejected: %v", err)
	}
	if err := checkAlerts(path, "", "fixture-quiet"); err != nil {
		t.Errorf("forbid-firing on a quiet rule rejected: %v", err)
	}
	if err := checkAlerts(path, "fixture-quiet", ""); err == nil {
		t.Error("require-firing on a never-fired rule passed")
	}
	if err := checkAlerts(path, "", "fixture-hot"); err == nil {
		t.Error("forbid-firing on a fired rule passed")
	}
	if err := checkAlerts(path, "no-such-rule", ""); err == nil {
		t.Error("require-firing on an unknown rule passed")
	}
}

func TestCheckAlerts(t *testing.T) {
	good := `{"schema":"convmeter/alerts/v1","now_seconds":30,
		"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"resolved","since_seconds":20,"value":1}],
		"transitions":[
			{"rule":"a","severity":"critical","from":"inactive","to":"firing","t_seconds":10,"value":9},
			{"rule":"a","severity":"critical","from":"firing","to":"resolved","t_seconds":20,"value":1}]}`
	cases := []struct {
		name    string
		doc     string
		wantErr bool
	}{
		{"good", good, false},
		{"bad-json", `{"schema":`, true},
		{"wrong-schema", `{"schema":"v0","now_seconds":1,"alerts":[],"transitions":[]}`, true},
		{"missing-now", `{"schema":"convmeter/alerts/v1","alerts":[],"transitions":[]}`, true},
		{"null-alerts", `{"schema":"convmeter/alerts/v1","now_seconds":1,"transitions":[]}`, true},
		{"empty-ok", `{"schema":"convmeter/alerts/v1","now_seconds":1,"alerts":[],"transitions":[]}`, false},
		{"unsorted-alerts", `{"schema":"convmeter/alerts/v1","now_seconds":1,
			"alerts":[{"rule":"b","severity":"warning","kind":"absence","state":"inactive","since_seconds":0,"value":0},
			          {"rule":"a","severity":"warning","kind":"absence","state":"inactive","since_seconds":0,"value":0}],
			"transitions":[]}`, true},
		{"bad-severity", `{"schema":"convmeter/alerts/v1","now_seconds":1,
			"alerts":[{"rule":"a","severity":"page","kind":"threshold","state":"inactive","since_seconds":0,"value":0}],
			"transitions":[]}`, true},
		{"bad-kind", `{"schema":"convmeter/alerts/v1","now_seconds":1,
			"alerts":[{"rule":"a","severity":"warning","kind":"vibes","state":"inactive","since_seconds":0,"value":0}],
			"transitions":[]}`, true},
		{"bad-state", `{"schema":"convmeter/alerts/v1","now_seconds":1,
			"alerts":[{"rule":"a","severity":"warning","kind":"threshold","state":"paging","since_seconds":0,"value":0}],
			"transitions":[]}`, true},
		{"unknown-transition-rule", `{"schema":"convmeter/alerts/v1","now_seconds":30,
			"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"inactive","since_seconds":0,"value":0}],
			"transitions":[{"rule":"ghost","severity":"critical","from":"inactive","to":"firing","t_seconds":10,"value":9}]}`, true},
		{"resolve-before-fire", `{"schema":"convmeter/alerts/v1","now_seconds":30,
			"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"resolved","since_seconds":10,"value":0}],
			"transitions":[{"rule":"a","severity":"critical","from":"firing","to":"resolved","t_seconds":10,"value":1}]}`, true},
		{"illegal-edge", `{"schema":"convmeter/alerts/v1","now_seconds":30,
			"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"resolved","since_seconds":10,"value":0}],
			"transitions":[{"rule":"a","severity":"critical","from":"inactive","to":"resolved","t_seconds":10,"value":1}]}`, true},
		{"non-monotone", `{"schema":"convmeter/alerts/v1","now_seconds":30,
			"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"resolved","since_seconds":5,"value":0},
			          {"rule":"b","severity":"warning","kind":"threshold","state":"firing","since_seconds":20,"value":9}],
			"transitions":[
				{"rule":"b","severity":"warning","from":"inactive","to":"firing","t_seconds":20,"value":9},
				{"rule":"a","severity":"critical","from":"inactive","to":"firing","t_seconds":2,"value":9},
				{"rule":"a","severity":"critical","from":"firing","to":"resolved","t_seconds":5,"value":0}]}`, true},
		{"after-now", `{"schema":"convmeter/alerts/v1","now_seconds":5,
			"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"firing","since_seconds":10,"value":9}],
			"transitions":[{"rule":"a","severity":"critical","from":"inactive","to":"firing","t_seconds":10,"value":9}]}`, true},
		{"state-mismatch", `{"schema":"convmeter/alerts/v1","now_seconds":30,
			"alerts":[{"rule":"a","severity":"critical","kind":"threshold","state":"inactive","since_seconds":0,"value":0}],
			"transitions":[{"rule":"a","severity":"critical","from":"inactive","to":"firing","t_seconds":10,"value":9}]}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "alerts.json")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			err := checkAlerts(path, "", "")
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkAlerts err = %v, wantErr = %t", err, tc.wantErr)
			}
		})
	}
}
