// Command obscheck validates telemetry artefacts produced by the
// --metrics-out/--trace-out/--drift-out flags: the metrics file must be
// parseable Prometheus text exposition (or JSONL) containing at least
// one convmeter_ sample, the trace file must be a Chrome trace-event
// JSON document with a traceEvents array, and the drift file must be a
// well-formed drift-monitor snapshot (optionally asserting that drift
// was, or was not, detected). It also validates benchmark baseline
// snapshots written by cmd/benchsnap (-bench BENCH_<n>.json: schema,
// sorted unique names, >= 1 iteration, finite values) and critical-path
// attribution reports (-critpath: schema, finite non-negative
// durations, legal dominant phases, blame consistency — optionally
// asserting that a specific worker was, or no worker was, blamed) and
// durable DAG run directories written by experiments -dag-dir
// (-manifest: every manifest parses, fingerprints and hashes are
// well-formed, input hashes resolve to committed manifests, and the
// input graph is acyclic) and alert reports written by experiments
// -alerts-out or served at /alerts (-alerts: schema, legal lifecycle
// edges, monotone transition timestamps, no resolve before a fire —
// optionally asserting that a specific rule did, or did not, fire).
// Trace validation additionally checks span-graph well-formedness when
// events carry span args: unique ids, resolvable parents, non-negative
// durations, and no cross-worker time-travel through causal links
// beyond the clock-alignment tolerance. CI's obs-smoke, chaos,
// critpath-smoke and alerts-smoke targets run it against real artefacts so a formatting
// regression fails the build rather than silently producing files
// Grafana, Perfetto or benchsnap -check reject.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	metrics := flag.String("metrics", "", "metrics file to validate (Prometheus text, or JSONL for .jsonl paths)")
	trace := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	drift := flag.String("drift", "", "drift-monitor JSON snapshot to validate (from -drift-out or GET /drift)")
	bench := flag.String("bench", "", "benchmark snapshot JSON to validate (from benchsnap -out, e.g. BENCH_1.json)")
	critpath := flag.String("critpath", "", "critical-path attribution report JSON to validate (from -critpath-out or GET /critpath)")
	manifest := flag.String("manifest", "", "DAG run directory to validate (from experiments -dag-dir): every manifest parses, fingerprints/hashes are well-formed, input hashes resolve to committed manifests, and the input graph is acyclic")
	alerts := flag.String("alerts", "", "alert report JSON to validate (from experiments -alerts-out or GET /alerts): schema, legal states and lifecycle edges, monotone transition timestamps, no resolve before a fire")
	requireFiring := flag.String("require-firing", "", "additionally require this rule to have fired at least once in the -alerts report (incident-run validation)")
	forbidFiring := flag.String("forbid-firing", "", "additionally require this rule to never have fired in the -alerts report (clean-run validation)")
	requireFaults := flag.Bool("require-faults", false, "additionally require a convmeter_faults_injected_total sample with value > 0 (chaos-run validation)")
	requireDrift := flag.Bool("require-drift", false, "additionally require at least one drift event and a drifting stream in the -drift snapshot (slowdown-run validation)")
	forbidDrift := flag.Bool("forbid-drift", false, "additionally require zero drift events in the -drift snapshot (clean-run validation)")
	requireBlame := flag.Int("require-blame", -1, "additionally require at least one -critpath step blaming this worker (straggler-run validation); -1 disables")
	forbidBlame := flag.Bool("forbid-blame", false, "additionally require zero blamed steps in the -critpath report (clean-run validation)")
	flag.Parse()
	if *metrics == "" && *trace == "" && *drift == "" && *bench == "" && *critpath == "" && *manifest == "" && *alerts == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (pass -metrics, -trace, -drift, -bench, -critpath, -manifest and/or -alerts)")
		os.Exit(2)
	}
	if (*requireFiring != "" || *forbidFiring != "") && *alerts == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -require-firing/-forbid-firing need -alerts")
		os.Exit(2)
	}
	if *requireFiring != "" && *requireFiring == *forbidFiring {
		fmt.Fprintln(os.Stderr, "obscheck: -require-firing and -forbid-firing name the same rule")
		os.Exit(2)
	}
	if *requireFaults && *metrics == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -require-faults needs -metrics")
		os.Exit(2)
	}
	if (*requireDrift || *forbidDrift) && *drift == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -require-drift/-forbid-drift need -drift")
		os.Exit(2)
	}
	if *requireDrift && *forbidDrift {
		fmt.Fprintln(os.Stderr, "obscheck: -require-drift and -forbid-drift are mutually exclusive")
		os.Exit(2)
	}
	if (*requireBlame >= 0 || *forbidBlame) && *critpath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -require-blame/-forbid-blame need -critpath")
		os.Exit(2)
	}
	if *requireBlame >= 0 && *forbidBlame {
		fmt.Fprintln(os.Stderr, "obscheck: -require-blame and -forbid-blame are mutually exclusive")
		os.Exit(2)
	}
	if *metrics != "" {
		if err := checkMetrics(*metrics, *requireFaults); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *metrics)
	}
	if *trace != "" {
		if err := checkTrace(*trace); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *trace)
	}
	if *drift != "" {
		if err := checkDrift(*drift, *requireDrift, *forbidDrift); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *drift)
	}
	if *bench != "" {
		if err := checkBench(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *bench)
	}
	if *critpath != "" {
		if err := checkCritpath(*critpath, *requireBlame, *forbidBlame); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *critpath)
	}
	if *manifest != "" {
		if err := checkManifests(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *manifest)
	}
	if *alerts != "" {
		if err := checkAlerts(*alerts, *requireFiring, *forbidFiring); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *alerts)
	}
}

// alertsSchema is the report format internal/obs/alert writes; keep in
// sync with alert.ReportSchema.
const alertsSchema = "convmeter/alerts/v1"

// alertStates are the lifecycle states a rule may legally report, and
// alertEdges the legal transitions between them: a rule fires from
// inactive or resolved, and resolves only from firing — so a resolve
// can never precede a fire.
var alertStates = map[string]bool{
	"inactive": true, "firing": true, "resolved": true,
}

var alertEdges = map[[2]string]bool{
	{"inactive", "firing"}: true,
	{"resolved", "firing"}: true,
	{"firing", "resolved"}: true,
}

// alertSeverities and alertKinds mirror the alert package's enums.
var alertSeverities = map[string]bool{"critical": true, "warning": true}

var alertKinds = map[string]bool{
	"threshold": true, "absence": true, "burnrate": true,
}

// checkAlerts validates an alert report: the schema tag, a status entry
// per rule (sorted, unique, legal severity/kind/state, finite values),
// and a well-formed transition history — monotone non-decreasing
// timestamps, legal lifecycle edges only, per-rule edges that chain
// (each From equals the rule's previous To, starting from inactive, so
// no rule resolves before it ever fired), and a final per-rule state
// that matches the status table. With requireFiring it additionally
// demands that the named rule fired at least once (an incident run must
// have been caught); with forbidFiring it demands the named rule never
// fired (a clean run must not false-positive).
func checkAlerts(path, requireFiring, forbidFiring string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Schema string   `json:"schema"`
		Now    *float64 `json:"now_seconds"`
		Alerts []struct {
			Rule     string  `json:"rule"`
			Severity string  `json:"severity"`
			Kind     string  `json:"kind"`
			State    string  `json:"state"`
			Since    float64 `json:"since_seconds"`
			Value    float64 `json:"value"`
		} `json:"alerts"`
		Transitions []struct {
			Rule     string  `json:"rule"`
			Severity string  `json:"severity"`
			From     string  `json:"from"`
			To       string  `json:"to"`
			T        float64 `json:"t_seconds"`
			Value    float64 `json:"value"`
		} `json:"transitions"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: invalid alerts JSON: %v", path, err)
	}
	if doc.Schema != alertsSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, alertsSchema)
	}
	if doc.Now == nil || math.IsNaN(*doc.Now) || math.IsInf(*doc.Now, 0) || *doc.Now < 0 {
		return fmt.Errorf("%s: now_seconds missing or not finite non-negative", path)
	}
	if doc.Alerts == nil || doc.Transitions == nil {
		return fmt.Errorf("%s: alerts or transitions missing or null", path)
	}
	ruleState := map[string]string{} // rule -> status-table state
	prevRule := ""
	for i, a := range doc.Alerts {
		if a.Rule == "" {
			return fmt.Errorf("%s: alert %d has no rule name", path, i)
		}
		if a.Rule <= prevRule {
			return fmt.Errorf("%s: alert rules not sorted/unique at %q", path, a.Rule)
		}
		prevRule = a.Rule
		if !alertSeverities[a.Severity] {
			return fmt.Errorf("%s: alert %s: unknown severity %q", path, a.Rule, a.Severity)
		}
		if !alertKinds[a.Kind] {
			return fmt.Errorf("%s: alert %s: unknown kind %q", path, a.Rule, a.Kind)
		}
		if !alertStates[a.State] {
			return fmt.Errorf("%s: alert %s: unknown state %q", path, a.Rule, a.State)
		}
		for what, v := range map[string]float64{"since_seconds": a.Since, "value": a.Value} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%s: alert %s: %s = %v, want finite", path, a.Rule, what, v)
			}
		}
		if a.Since < 0 {
			return fmt.Errorf("%s: alert %s: since_seconds %v, want >= 0", path, a.Rule, a.Since)
		}
		ruleState[a.Rule] = a.State
	}
	last := map[string]string{} // rule -> state after its latest transition
	fired := map[string]bool{}  // rule -> ever fired in the history
	prevT := math.Inf(-1)
	for i, tr := range doc.Transitions {
		if tr.Rule == "" {
			return fmt.Errorf("%s: transition %d has no rule name", path, i)
		}
		if _, ok := ruleState[tr.Rule]; !ok {
			return fmt.Errorf("%s: transition %d names unknown rule %q", path, i, tr.Rule)
		}
		if !alertSeverities[tr.Severity] {
			return fmt.Errorf("%s: transition %d (%s): unknown severity %q", path, i, tr.Rule, tr.Severity)
		}
		if math.IsNaN(tr.T) || math.IsInf(tr.T, 0) || tr.T < 0 {
			return fmt.Errorf("%s: transition %d (%s): t_seconds %v, want finite non-negative", path, i, tr.Rule, tr.T)
		}
		if tr.T < prevT {
			return fmt.Errorf("%s: transition %d (%s): t_seconds %v < previous %v — history not monotone", path, i, tr.Rule, tr.T, prevT)
		}
		prevT = tr.T
		if tr.T > *doc.Now {
			return fmt.Errorf("%s: transition %d (%s): t_seconds %v after now_seconds %v", path, i, tr.Rule, tr.T, *doc.Now)
		}
		if !alertStates[tr.From] || !alertStates[tr.To] {
			return fmt.Errorf("%s: transition %d (%s): unknown state in %s -> %s", path, i, tr.Rule, tr.From, tr.To)
		}
		if !alertEdges[[2]string{tr.From, tr.To}] {
			return fmt.Errorf("%s: transition %d (%s): illegal edge %s -> %s", path, i, tr.Rule, tr.From, tr.To)
		}
		from := last[tr.Rule]
		if from == "" {
			from = "inactive"
		}
		if tr.From != from {
			return fmt.Errorf("%s: transition %d (%s): from %q but the rule's prior state is %q — an edge was skipped or reordered", path, i, tr.Rule, tr.From, from)
		}
		last[tr.Rule] = tr.To
		if tr.To == "firing" {
			fired[tr.Rule] = true
		}
		if math.IsNaN(tr.Value) || math.IsInf(tr.Value, 0) {
			return fmt.Errorf("%s: transition %d (%s): value %v, want finite", path, i, tr.Rule, tr.Value)
		}
	}
	for rule, state := range last {
		if ruleState[rule] != state {
			return fmt.Errorf("%s: rule %s: status table says %q but its last transition leaves it %q", path, rule, ruleState[rule], state)
		}
	}
	if requireFiring != "" {
		if _, ok := ruleState[requireFiring]; !ok {
			return fmt.Errorf("%s: -require-firing rule %q is not in the report", path, requireFiring)
		}
		if !fired[requireFiring] {
			return fmt.Errorf("%s: rule %q never fired (states: %v) — the incident was missed", path, requireFiring, ruleState[requireFiring])
		}
	}
	if forbidFiring != "" {
		if _, ok := ruleState[forbidFiring]; !ok {
			return fmt.Errorf("%s: -forbid-firing rule %q is not in the report", path, forbidFiring)
		}
		if fired[forbidFiring] {
			return fmt.Errorf("%s: rule %q fired on a clean run (false positive)", path, forbidFiring)
		}
	}
	return nil
}

// manifestSchema is the run-manifest format internal/dagrun/manifest
// writes; keep in sync with manifest.SchemaV1.
const manifestSchema = "convmeter/dag-manifest/v1"

// hex64 reports whether s is a 64-digit lowercase hex string — the shape
// of every fingerprint and content hash the manifest package produces.
func hex64(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// checkManifests validates a DAG run directory: every *.json file is a
// well-formed manifest (schema tag, node id matching the file name,
// 64-hex fingerprint and hash, attempt >= 1, valid JSON output), every
// input hash resolves to a committed manifest in the same directory
// whose stored hash matches (the content-address chain is unbroken),
// and the input graph is acyclic. An empty directory fails: a run that
// committed nothing has no resume to audit.
func checkManifests(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type man struct {
		Schema      string            `json:"schema"`
		Node        string            `json:"node"`
		Fingerprint string            `json:"fingerprint"`
		Inputs      map[string]string `json:"inputs"`
		Attempt     int               `json:"attempt"`
		Output      json.RawMessage   `json:"output"`
		Hash        string            `json:"hash"`
	}
	mans := map[string]*man{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			return err
		}
		var m man
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("%s/%s: invalid manifest JSON: %v", dir, name, err)
		}
		if m.Schema != manifestSchema {
			return fmt.Errorf("%s/%s: schema %q, want %q", dir, name, m.Schema, manifestSchema)
		}
		if m.Node == "" || m.Node+".json" != name {
			return fmt.Errorf("%s/%s: names node %q, want the file's own stem", dir, name, m.Node)
		}
		if !hex64(m.Fingerprint) {
			return fmt.Errorf("%s/%s: malformed fingerprint %q", dir, name, m.Fingerprint)
		}
		if !hex64(m.Hash) {
			return fmt.Errorf("%s/%s: malformed hash %q", dir, name, m.Hash)
		}
		if m.Attempt < 1 {
			return fmt.Errorf("%s/%s: attempt %d, want >= 1", dir, name, m.Attempt)
		}
		if len(m.Output) == 0 || !json.Valid(m.Output) {
			return fmt.Errorf("%s/%s: output is not valid JSON", dir, name)
		}
		mans[m.Node] = &m
	}
	if len(mans) == 0 {
		return fmt.Errorf("%s: no manifests (*.json) found", dir)
	}
	nodes := make([]string, 0, len(mans))
	for n := range mans {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		deps := make([]string, 0, len(mans[n].Inputs))
		for d := range mans[n].Inputs {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if d == "" {
				return fmt.Errorf("%s: manifest %s has an input with an empty node id", dir, n)
			}
			h := mans[n].Inputs[d]
			if !hex64(h) {
				return fmt.Errorf("%s: manifest %s: malformed input hash %q for %s", dir, n, h, d)
			}
			dep, ok := mans[d]
			if !ok {
				return fmt.Errorf("%s: manifest %s consumes input %s, but no manifest for it exists — the chain is broken", dir, n, d)
			}
			if dep.Hash != h {
				return fmt.Errorf("%s: manifest %s recorded input hash %s for %s, but its manifest's hash is %s — stale or tampered", dir, n, h, d, dep.Hash)
			}
		}
	}
	// Acyclicity: depth-first over sorted ids; a back edge is a cycle.
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var visit func(n string, path []string) error
	visit = func(n string, path []string) error {
		switch state[n] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("%s: input cycle through %s (path %s)", dir, n, strings.Join(append(path, n), " -> "))
		}
		state[n] = visiting
		deps := make([]string, 0, len(mans[n].Inputs))
		for d := range mans[n].Inputs {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d, append(path, n)); err != nil {
				return err
			}
		}
		state[n] = done
		return nil
	}
	for _, n := range nodes {
		if err := visit(n, nil); err != nil {
			return err
		}
	}
	return nil
}

// critpathSchema is the report format internal/obs/critpath writes;
// keep in sync with critpath.SchemaV1.
const critpathSchema = "convmeter/critpath/v1"

// critpathClasses are the phases a step may legally report as dominant.
var critpathClasses = map[string]bool{
	"compute": true, "comm": true, "wait": true, "none": true,
}

// checkCritpath validates a critical-path attribution report: the
// schema tag, finite non-negative durations, legal dominant phases, and
// blame consistency (a blamed worker exists in the step's worker list
// and the step is wait-dominated). With requireBlame >= 0 it demands at
// least one step blaming that worker (a straggler run must have been
// attributed); with forbidBlame it demands no blamed steps at all.
func checkCritpath(path string, requireBlame int, forbidBlame bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Schema string `json:"schema"`
		Steps  []struct {
			Step      int     `json:"step"`
			Total     float64 `json:"total_seconds"`
			Compute   float64 `json:"compute_seconds"`
			Comm      float64 `json:"comm_seconds"`
			Wait      float64 `json:"wait_seconds"`
			Dominant  string  `json:"dominant"`
			Blame     *int    `json:"blame"`
			BlameWait float64 `json:"blame_wait_seconds"`
			Workers   []struct {
				Worker     int     `json:"worker"`
				Compute    float64 `json:"compute_seconds"`
				Comm       float64 `json:"comm_seconds"`
				Wait       float64 `json:"wait_seconds"`
				CausedWait float64 `json:"caused_wait_seconds"`
			} `json:"workers"`
			Path []struct {
				Span         int64   `json:"span"`
				Class        string  `json:"class"`
				Contribution float64 `json:"contribution_seconds"`
			} `json:"path"`
		} `json:"steps"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: invalid critpath JSON: %v", path, err)
	}
	if doc.Schema != critpathSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, critpathSchema)
	}
	if doc.Steps == nil {
		return fmt.Errorf("%s: steps missing or null", path)
	}
	blamed := map[int]int{} // worker -> blamed-step count
	for i, st := range doc.Steps {
		for what, v := range map[string]float64{
			"total_seconds": st.Total, "compute_seconds": st.Compute,
			"comm_seconds": st.Comm, "wait_seconds": st.Wait,
			"blame_wait_seconds": st.BlameWait,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%s: step %d (index %d): %s = %v, want finite and non-negative", path, st.Step, i, what, v)
			}
		}
		if !critpathClasses[st.Dominant] {
			return fmt.Errorf("%s: step %d: unknown dominant phase %q", path, st.Step, st.Dominant)
		}
		if st.Blame == nil {
			return fmt.Errorf("%s: step %d: blame missing", path, st.Step)
		}
		if b := *st.Blame; b >= 0 {
			if st.Dominant != "wait" {
				return fmt.Errorf("%s: step %d: blames worker %d but dominant is %q", path, st.Step, b, st.Dominant)
			}
			found := false
			for _, w := range st.Workers {
				if w.Worker == b {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("%s: step %d: blamed worker %d not in worker attribution", path, st.Step, b)
			}
			blamed[b]++
		}
		prev := -1 << 62
		for _, w := range st.Workers {
			if w.Worker <= prev {
				return fmt.Errorf("%s: step %d: workers not sorted by id", path, st.Step)
			}
			prev = w.Worker
			for what, v := range map[string]float64{
				"compute_seconds": w.Compute, "comm_seconds": w.Comm,
				"wait_seconds": w.Wait, "caused_wait_seconds": w.CausedWait,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("%s: step %d: worker %d: %s = %v", path, st.Step, w.Worker, what, v)
				}
			}
		}
		for _, p := range st.Path {
			if math.IsNaN(p.Contribution) || math.IsInf(p.Contribution, 0) || p.Contribution < 0 {
				return fmt.Errorf("%s: step %d: path span %d contribution %v", path, st.Step, p.Span, p.Contribution)
			}
		}
	}
	if forbidBlame && len(blamed) > 0 {
		return fmt.Errorf("%s: %d blamed step(s) on a clean run (false positive)", path, len(blamed))
	}
	if requireBlame >= 0 {
		if blamed[requireBlame] == 0 {
			return fmt.Errorf("%s: no step blames worker %d (blamed: %v) — the straggler was missed", path, requireBlame, blamed)
		}
		for w := range blamed {
			if w != requireBlame {
				return fmt.Errorf("%s: worker %d blamed alongside expected straggler %d", path, w, requireBlame)
			}
		}
	}
	return nil
}

// benchSchema is the snapshot format benchsnap writes; keep in sync
// with cmd/benchsnap's SchemaV1.
const benchSchema = "convmeter/bench-snapshot/v1"

// checkBench validates a benchmark baseline snapshot: the schema tag,
// a non-empty benchmark list sorted by unique name (so diffs are
// stable), at least one measured iteration per benchmark, and finite,
// sane values throughout — a baseline with a NaN or a zero ns/op would
// make every later benchsnap -check comparison meaningless.
func checkBench(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Schema     string `json:"schema"`
		Go         string `json:"go"`
		Benchmarks []struct {
			Name        string   `json:"name"`
			Iterations  int64    `json:"iterations"`
			NsPerOp     *float64 `json:"ns_per_op"`
			BytesPerOp  float64  `json:"bytes_per_op"`
			AllocsPerOp float64  `json:"allocs_per_op"`
			MBPerS      float64  `json:"mb_per_s"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: invalid bench JSON: %v", path, err)
	}
	if doc.Schema != benchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, benchSchema)
	}
	if doc.Go == "" {
		return fmt.Errorf("%s: missing go version stamp", path)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks", path)
	}
	prev := ""
	for i, b := range doc.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark %d has no name", path, i)
		}
		if b.Name <= prev {
			return fmt.Errorf("%s: benchmark names not sorted/unique at %q", path, b.Name)
		}
		prev = b.Name
		if b.Iterations < 1 {
			return fmt.Errorf("%s: %s: iterations %d, want >= 1", path, b.Name, b.Iterations)
		}
		if b.NsPerOp == nil {
			return fmt.Errorf("%s: %s: ns_per_op missing", path, b.Name)
		}
		for what, v := range map[string]float64{
			"ns_per_op": *b.NsPerOp, "bytes_per_op": b.BytesPerOp,
			"allocs_per_op": b.AllocsPerOp, "mb_per_s": b.MBPerS,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%s: %s: %s = %v, want finite and non-negative", path, b.Name, what, v)
			}
		}
		if *b.NsPerOp == 0 {
			return fmt.Errorf("%s: %s: ns_per_op is zero", path, b.Name)
		}
	}
	return nil
}

// faultsSeries is the counter family a chaos run must have populated.
const faultsSeries = "convmeter_faults_injected_total"

// checkMetrics validates the exposition format line by line and requires
// at least one convmeter_-prefixed sample with a finite value. With
// requireFaults it additionally demands a positive fault-injection
// counter — the proof that a chaos run actually injected something.
func checkMetrics(path string, requireFaults bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return checkJSONL(path, f, requireFaults)
	}
	samples, faults := 0, 0.0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// A sample line is "<series> <value>"; the series may carry a
		// {label="..."} body which itself contains no spaces the way the
		// registry renders it.
		sp := strings.LastIndexByte(text, ' ')
		if sp <= 0 {
			return fmt.Errorf("%s:%d: not a sample line: %q", path, line, text)
		}
		val, err := strconv.ParseFloat(text[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("%s:%d: bad sample value: %v", path, line, err)
		}
		if strings.HasPrefix(text, "convmeter_") {
			samples++
		}
		if strings.HasPrefix(text, faultsSeries) {
			faults += val
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("%s: no convmeter_ samples", path)
	}
	if requireFaults && faults <= 0 {
		return fmt.Errorf("%s: no positive %s sample (chaos run injected nothing?)", path, faultsSeries)
	}
	return nil
}

// checkJSONL requires every line to be a standalone JSON object and at
// least one to carry a convmeter_-prefixed name (plus, with
// requireFaults, a positive fault-injection counter).
func checkJSONL(path string, f *os.File, requireFaults bool) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line, named, faults := 0, 0, 0.0
	for sc.Scan() {
		line++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("%s:%d: invalid JSONL record: %v", path, line, err)
		}
		name, _ := rec["name"].(string)
		if strings.HasPrefix(name, "convmeter_") {
			named++
		}
		if strings.HasPrefix(name, faultsSeries) {
			if v, ok := rec["value"].(float64); ok {
				faults += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if named == 0 {
		return fmt.Errorf("%s: no convmeter_ records", path)
	}
	if requireFaults && faults <= 0 {
		return fmt.Errorf("%s: no positive %s record (chaos run injected nothing?)", path, faultsSeries)
	}
	return nil
}

// driftStates are the states a drift stream may legally report.
var driftStates = map[string]bool{
	"calibrating": true, "warmup": true, "ok": true, "drifting": true,
}

// checkDrift validates a drift-monitor snapshot: a streams array whose
// entries carry a model, a phase and a legal state, with non-negative
// pair/event counts that are consistent with the top-level total. With
// requireDrift it additionally demands at least one event on a drifting
// stream (a slowdown run must have been caught); with forbidDrift it
// demands zero events (a clean run must not false-positive).
func checkDrift(path string, requireDrift, forbidDrift bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Streams []struct {
			Model  string `json:"model"`
			Phase  string `json:"phase"`
			State  string `json:"state"`
			Pairs  int    `json:"pairs"`
			Events int    `json:"events"`
		} `json:"streams"`
		Events *int `json:"events_total"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: invalid drift JSON: %v", path, err)
	}
	if doc.Streams == nil || doc.Events == nil {
		return fmt.Errorf("%s: streams or events_total missing", path)
	}
	total, drifting := 0, false
	for i, st := range doc.Streams {
		if st.Model == "" || st.Phase == "" {
			return fmt.Errorf("%s: stream %d has no model/phase", path, i)
		}
		if !driftStates[st.State] {
			return fmt.Errorf("%s: stream %s/%s has unknown state %q", path, st.Model, st.Phase, st.State)
		}
		if st.Pairs < 0 || st.Events < 0 {
			return fmt.Errorf("%s: stream %s/%s has negative counts", path, st.Model, st.Phase)
		}
		total += st.Events
		if st.State == "drifting" {
			drifting = true
		}
	}
	if total != *doc.Events {
		return fmt.Errorf("%s: events_total %d != sum of stream events %d", path, *doc.Events, total)
	}
	if requireDrift && (total < 1 || !drifting) {
		return fmt.Errorf("%s: no drift detected (events_total=%d) — the slowdown run was missed", path, total)
	}
	if forbidDrift && total != 0 {
		return fmt.Errorf("%s: %d drift event(s) on a clean run (false positive)", path, total)
	}
	return nil
}

// linkTolerance is the cross-worker ordering slack checkTrace allows on
// causal links, in trace microseconds: after clock alignment a wait may
// still appear to end slightly before its cross-worker sender started
// (the handshake is accurate to a fraction of one link round-trip), but
// a gross violation means the alignment, or the trace, is broken.
const linkTolerance = 10_000 // 10ms

// checkTrace requires a well-formed Chrome trace-event document with a
// non-null traceEvents array. Events that carry span args (the tracer's
// exporter attaches {id, parent, link}) are additionally graph-checked:
// span ids must be unique, non-zero parents must resolve to another
// span in the document, durations must be non-negative, and a causal
// link must not travel backwards in time beyond linkTolerance — the
// linked sender must not *end* after the waiting span does by more than
// the alignment slack. Dangling links (the sender faulted and never
// recorded) are tolerated.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    *float64       `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: invalid trace JSON: %v", path, err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("%s: traceEvents missing or null", path)
	}
	type spanEv struct {
		start, end float64
	}
	spans := map[int64]spanEv{}
	type pending struct {
		name   string
		parent int64
		link   int64
		end    float64
	}
	var checks []pending
	argID := func(args map[string]any, key string) (int64, bool) {
		v, ok := args[key].(float64)
		return int64(v), ok
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if e.Phase != "X" {
			continue
		}
		if e.TS == nil {
			return fmt.Errorf("%s: event %d (%s): duration event without ts", path, i, e.Name)
		}
		if *e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("%s: event %d (%s): negative ts/dur (%g/%g)", path, i, e.Name, *e.TS, e.Dur)
		}
		id, ok := argID(e.Args, "id")
		if !ok {
			continue // not a span-exported event; format-only checks apply
		}
		if _, dup := spans[id]; dup {
			return fmt.Errorf("%s: event %d (%s): duplicate span id %d", path, i, e.Name, id)
		}
		spans[id] = spanEv{start: *e.TS, end: *e.TS + e.Dur}
		p := pending{name: e.Name, end: *e.TS + e.Dur}
		p.parent, _ = argID(e.Args, "parent")
		p.link, _ = argID(e.Args, "link")
		checks = append(checks, p)
	}
	for _, c := range checks {
		if c.parent != 0 {
			if _, ok := spans[c.parent]; !ok {
				return fmt.Errorf("%s: span %q: unresolvable parent %d", path, c.name, c.parent)
			}
		}
		if c.link != 0 {
			sender, ok := spans[c.link]
			if !ok {
				continue // dangling link: the sender faulted mid-op
			}
			if sender.end > c.end+linkTolerance {
				return fmt.Errorf("%s: span %q ends %.0fµs before its linked sender %d — cross-worker time-travel beyond the %dµs alignment tolerance",
					path, c.name, sender.end-c.end, c.link, linkTolerance)
			}
		}
	}
	return nil
}
