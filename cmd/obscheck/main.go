// Command obscheck validates telemetry artefacts produced by the
// --metrics-out/--trace-out flags: the metrics file must be parseable
// Prometheus text exposition (or JSONL) containing at least one
// convmeter_ sample, and the trace file must be a Chrome trace-event
// JSON document with a traceEvents array. CI's obs-smoke target runs it
// against a real experiment run so a formatting regression fails the
// build rather than silently producing files Grafana or Perfetto reject.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	metrics := flag.String("metrics", "", "metrics file to validate (Prometheus text, or JSONL for .jsonl paths)")
	trace := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	requireFaults := flag.Bool("require-faults", false, "additionally require a convmeter_faults_injected_total sample with value > 0 (chaos-run validation)")
	flag.Parse()
	if *metrics == "" && *trace == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (pass -metrics and/or -trace)")
		os.Exit(2)
	}
	if *requireFaults && *metrics == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -require-faults needs -metrics")
		os.Exit(2)
	}
	if *metrics != "" {
		if err := checkMetrics(*metrics, *requireFaults); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *metrics)
	}
	if *trace != "" {
		if err := checkTrace(*trace); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s ok\n", *trace)
	}
}

// faultsSeries is the counter family a chaos run must have populated.
const faultsSeries = "convmeter_faults_injected_total"

// checkMetrics validates the exposition format line by line and requires
// at least one convmeter_-prefixed sample with a finite value. With
// requireFaults it additionally demands a positive fault-injection
// counter — the proof that a chaos run actually injected something.
func checkMetrics(path string, requireFaults bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return checkJSONL(path, f, requireFaults)
	}
	samples, faults := 0, 0.0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// A sample line is "<series> <value>"; the series may carry a
		// {label="..."} body which itself contains no spaces the way the
		// registry renders it.
		sp := strings.LastIndexByte(text, ' ')
		if sp <= 0 {
			return fmt.Errorf("%s:%d: not a sample line: %q", path, line, text)
		}
		val, err := strconv.ParseFloat(text[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("%s:%d: bad sample value: %v", path, line, err)
		}
		if strings.HasPrefix(text, "convmeter_") {
			samples++
		}
		if strings.HasPrefix(text, faultsSeries) {
			faults += val
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("%s: no convmeter_ samples", path)
	}
	if requireFaults && faults <= 0 {
		return fmt.Errorf("%s: no positive %s sample (chaos run injected nothing?)", path, faultsSeries)
	}
	return nil
}

// checkJSONL requires every line to be a standalone JSON object and at
// least one to carry a convmeter_-prefixed name (plus, with
// requireFaults, a positive fault-injection counter).
func checkJSONL(path string, f *os.File, requireFaults bool) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line, named, faults := 0, 0, 0.0
	for sc.Scan() {
		line++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("%s:%d: invalid JSONL record: %v", path, line, err)
		}
		name, _ := rec["name"].(string)
		if strings.HasPrefix(name, "convmeter_") {
			named++
		}
		if strings.HasPrefix(name, faultsSeries) {
			if v, ok := rec["value"].(float64); ok {
				faults += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if named == 0 {
		return fmt.Errorf("%s: no convmeter_ records", path)
	}
	if requireFaults && faults <= 0 {
		return fmt.Errorf("%s: no positive %s record (chaos run injected nothing?)", path, faultsSeries)
	}
	return nil
}

// checkTrace requires a well-formed Chrome trace-event document with a
// non-null traceEvents array.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: invalid trace JSON: %v", path, err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("%s: traceEvents missing or null", path)
	}
	for i, e := range doc.TraceEvents {
		if _, ok := e["name"].(string); !ok {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
	}
	return nil
}
