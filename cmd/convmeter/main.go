// Command convmeter is the ConvMeter CLI: inspect ConvNet metrics, fit
// performance models on benchmark datasets (persisting the coefficients
// as JSON), and predict inference time, training time and weak/strong
// scaling. See `convmeter help` or internal/cli for the command set.
package main

import (
	"os"

	"convmeter/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], cli.Env{Stdout: os.Stdout, Stderr: os.Stderr}))
}
