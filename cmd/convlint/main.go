// Command convlint runs ConvMeter's custom static-analysis suite over
// Go packages:
//
//	convlint [-config lint.config] [packages...]
//
// With no packages it analyses ./... . Findings print one per line as
// file:line:col analyzer: message, and the exit status is 1 when any
// finding survives suppression (2 on usage or load errors). Suppress a
// finding with `//lint:ignore <analyzer> <reason>` on the offending
// line or the line above.
//
// With -json, findings are emitted instead as a JSON array of
// {file, line, col, analyzer, message, why?} objects on stdout — the
// machine interface CI uses to turn findings into inline code
// annotations. The exit status contract is unchanged, and an empty run
// prints [].
//
// With -why, text output appends each finding's explanation chain —
// for the hotpath family, the lint.config root → … → function call
// chain that made the code hot — as an indented "why:" line. JSON
// output always carries the chain in the "why" field when present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"convmeter/internal/lint"
)

func main() {
	configPath := flag.String("config", "", "path to lint.config (default: auto-discovered next to go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	why := flag.Bool("why", false, "print each finding's explanation chain (hotpath reachability)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: convlint [-config lint.config] [-json] [-why] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*configPath, *jsonOut, *why, flag.Args()))
}

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Why      string `json:"why,omitempty"`
}

func run(configPath string, jsonOut, why bool, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	if configPath == "" {
		configPath = findConfig(wd)
		if configPath == "" {
			fmt.Fprintln(os.Stderr, "convlint: no lint.config found between here and the filesystem root; pass -config")
			return 2
		}
	}
	cfg, err := lint.LoadConfig(configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader(wd).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	findings := lint.Run(pkgs, lint.Suite(cfg))
	if jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			f = relFinding(wd, f)
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message, Why: f.Why,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "convlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(relFinding(wd, f).String())
			if why && f.Why != "" {
				fmt.Println("\twhy:", f.Why)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "convlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findConfig walks from dir toward the root looking for lint.config.
func findConfig(dir string) string {
	for {
		p := filepath.Join(dir, "lint.config")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// relFinding shortens a finding's path relative to the working
// directory.
func relFinding(wd string, f lint.Finding) lint.Finding {
	if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !filepath.IsAbs(r) {
		f.Pos.Filename = r
	}
	return f
}
