// Command convlint runs ConvMeter's custom static-analysis suite over
// Go packages:
//
//	convlint [-config lint.config] [packages...]
//
// With no packages it analyses ./... . Findings print one per line as
// file:line:col analyzer: message, and the exit status is 1 when any
// finding survives suppression (2 on usage or load errors). Suppress a
// finding with `//lint:ignore <analyzer> <reason>` on the offending
// line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"convmeter/internal/lint"
)

func main() {
	configPath := flag.String("config", "", "path to lint.config (default: auto-discovered next to go.mod)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: convlint [-config lint.config] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*configPath, flag.Args()))
}

func run(configPath string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	if configPath == "" {
		configPath = findConfig(wd)
		if configPath == "" {
			fmt.Fprintln(os.Stderr, "convlint: no lint.config found between here and the filesystem root; pass -config")
			return 2
		}
	}
	cfg, err := lint.LoadConfig(configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader(wd).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	findings := lint.Run(pkgs, lint.Suite(cfg))
	for _, f := range findings {
		fmt.Println(rel(wd, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "convlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findConfig walks from dir toward the root looking for lint.config.
func findConfig(dir string) string {
	for {
		p := filepath.Join(dir, "lint.config")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// rel shortens finding paths relative to the working directory.
func rel(wd string, f lint.Finding) string {
	if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !filepath.IsAbs(r) {
		f.Pos.Filename = r
	}
	return f.String()
}
