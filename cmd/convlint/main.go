// Command convlint runs ConvMeter's custom static-analysis suite over
// Go packages:
//
//	convlint [-config lint.config] [packages...]
//
// With no packages it analyses ./... . Findings print one per line as
// file:line:col analyzer: message, and the exit status is 1 when any
// finding survives suppression (2 on usage or load errors). Suppress a
// finding with `//lint:ignore <analyzer> <reason>` on the offending
// line or the line above.
//
// With -json, findings are emitted instead as a JSON array of
// {file, line, col, analyzer, message, why?} objects on stdout — the
// machine interface CI uses to turn findings into inline code
// annotations. The exit status contract is unchanged, and an empty run
// prints [].
//
// With -sarif, findings are emitted as a SARIF 2.1.0 log on stdout —
// the interchange format GitHub code scanning ingests, so findings
// surface as PR alerts via codeql-action/upload-sarif. Each analyzer
// becomes a rule in the tool driver, each finding a result with a
// repo-relative location; -why chains travel in the message text.
// -json and -sarif are mutually exclusive.
//
// With -why, text output appends each finding's explanation chain —
// for the hotpath family, the lint.config root → … → function call
// chain that made the code hot — as an indented "why:" line. JSON
// output always carries the chain in the "why" field when present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"convmeter/internal/lint"
)

func main() {
	configPath := flag.String("config", "", "path to lint.config (default: auto-discovered next to go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	why := flag.Bool("why", false, "print each finding's explanation chain (hotpath reachability)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: convlint [-config lint.config] [-json|-sarif] [-why] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(os.Stdout, *configPath, *jsonOut, *sarifOut, *why, flag.Args()))
}

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Why      string `json:"why,omitempty"`
}

func run(stdout io.Writer, configPath string, jsonOut, sarifOut, why bool, patterns []string) int {
	if jsonOut && sarifOut {
		fmt.Fprintln(os.Stderr, "convlint: -json and -sarif are mutually exclusive")
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	if configPath == "" {
		configPath = findConfig(wd)
		if configPath == "" {
			fmt.Fprintln(os.Stderr, "convlint: no lint.config found between here and the filesystem root; pass -config")
			return 2
		}
	}
	cfg, err := lint.LoadConfig(configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader(wd).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convlint:", err)
		return 2
	}
	suite := lint.Suite(cfg)
	findings := lint.Run(pkgs, suite)
	for i := range findings {
		findings[i] = relFinding(wd, findings[i])
	}
	switch {
	case jsonOut:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message, Why: f.Why,
			})
		}
		if err := encodeIndented(stdout, out); err != nil {
			fmt.Fprintln(os.Stderr, "convlint:", err)
			return 2
		}
	case sarifOut:
		if err := encodeIndented(stdout, sarifReport(suite, findings)); err != nil {
			fmt.Fprintln(os.Stderr, "convlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			// stdout is an injected writer, not literally os.Stdout, so the
			// printer exemption doesn't apply; a failed report print has no
			// better channel than the exit status we already set.
			_, _ = fmt.Fprintln(stdout, f.String())
			if why && f.Why != "" {
				_, _ = fmt.Fprintln(stdout, "\twhy:", f.Why)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "convlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func encodeIndented(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}

// --- SARIF 2.1.0 ------------------------------------------------------
//
// The minimal subset GitHub code scanning ingests: one run, one tool
// driver listing every suite analyzer as a rule, one result per finding
// with a physical location whose uri is repo-relative (uriBaseId
// %SRCROOT% is what upload-sarif resolves against the checkout root).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifReport renders the suite's findings as a SARIF log. Every suite
// analyzer appears as a rule even when silent, so code scanning knows
// the full rule set that ran; findings reference rules by id.
func sarifReport(suite []*lint.Analyzer, findings []lint.Finding) sarifLog {
	rules := make([]sarifRule, 0, len(suite)+1)
	seen := map[string]bool{}
	for _, a := range suite {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	// Findings can carry pseudo-rule ids the suite does not list (the
	// "lint" directive-hygiene analyzer); register them too.
	for _, f := range findings {
		if !seen[f.Analyzer] {
			seen[f.Analyzer] = true
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: "lint directive hygiene"}})
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		text := f.Message
		if f.Why != "" {
			text += " (why: " + f.Why + ")"
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: text},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(f.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "convlint", Rules: rules}}, Results: results}},
	}
}

// findConfig walks from dir toward the root looking for lint.config.
func findConfig(dir string) string {
	for {
		p := filepath.Join(dir, "lint.config")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// relFinding shortens a finding's path relative to the working
// directory.
func relFinding(wd string, f lint.Finding) lint.Finding {
	if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !filepath.IsAbs(r) {
		f.Pos.Filename = r
	}
	return f
}
