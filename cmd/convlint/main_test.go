package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"convmeter/internal/lint"
)

// TestSarifReportShape pins the SARIF subset GitHub code scanning
// needs: schema/version header, one run whose driver lists every suite
// analyzer as a rule, and per-finding results with repo-relative
// %SRCROOT% locations. A silent run still declares its rules.
func TestSarifReportShape(t *testing.T) {
	suite := lint.Suite(&lint.Config{})
	findings := []lint.Finding{
		{
			Analyzer: "lifetime",
			Pos:      token.Position{Filename: "internal/allreduce/tcp.go", Line: 42, Column: 7},
			Message:  "connection is not released on every path",
			Why:      "acquired by net.Dial",
		},
		{
			Analyzer: "lint",
			Pos:      token.Position{Filename: "internal/obs/obs.go", Line: 3, Column: 1},
			Message:  "stale //lint:ignore directive",
		},
	}
	log := sarifReport(suite, findings)

	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("not a SARIF 2.1.0 log: version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "convlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if ruleIDs[r.ID] {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %q has no description", r.ID)
		}
	}
	for _, want := range []string{"boundary", "hotpath", "lifetime", "ctxflow", "chanproto", "lint"} {
		if !ruleIDs[want] {
			t.Errorf("driver rules missing %q (got %v)", want, ruleIDs)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "lifetime" || r0.Level != "error" {
		t.Errorf("result 0 = %+v", r0)
	}
	if !strings.Contains(r0.Message.Text, "why: acquired by net.Dial") {
		t.Errorf("why chain dropped from message: %q", r0.Message.Text)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/allreduce/tcp.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact location = %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	if !ruleIDs[run.Results[1].RuleID] {
		t.Errorf("result rule %q not declared by the driver", run.Results[1].RuleID)
	}

	// The log must serialise to valid JSON with the fields GitHub keys
	// on spelled exactly.
	raw, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"$schema"`, `"ruleId"`, `"uriBaseId"`, `"startLine"`, `"physicalLocation"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("serialised SARIF missing key %s", key)
		}
	}
}

// TestSarifEmptyRun: a clean repo still produces a structurally valid
// log (runs[0].results == [] — never null, which upload-sarif rejects).
func TestSarifEmptyRun(t *testing.T) {
	raw, err := json.Marshal(sarifReport(lint.Suite(&lint.Config{}), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"results":[]`) {
		t.Errorf("empty run must serialise results as [], got:\n%s", raw)
	}
}
