package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// alertsDoc mirrors the /alerts and -alerts-out JSON layout.
type alertsDoc struct {
	Schema string `json:"schema"`
	Alerts []struct {
		Rule     string  `json:"rule"`
		Severity string  `json:"severity"`
		State    string  `json:"state"`
		Value    float64 `json:"value"`
	} `json:"alerts"`
	Transitions []struct {
		Rule string `json:"rule"`
		To   string `json:"to"`
	} `json:"transitions"`
}

// alertState returns the named rule's state in the report, or "".
func (d *alertsDoc) alertState(rule string) string {
	for _, a := range d.Alerts {
		if a.Rule == rule {
			return a.State
		}
	}
	return ""
}

// everFired reports whether the named rule fired in the history.
func (d *alertsDoc) everFired(rule string) bool {
	for _, tr := range d.Transitions {
		if tr.Rule == rule && tr.To == "firing" {
			return true
		}
	}
	return false
}

// waitForAddr polls for the -ops-addr-out file the run writes once its
// listener is up.
func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil {
			return strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			t.Fatal("ops address file never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunAlertsSlowdown is the alerting acceptance test: a chaos run
// with a slowdown profile, a compressed SLO timebase and a fast sample
// cadence must burn the drift error budget, fire the critical
// drift-burn-rate rule, flip /readyz to 503 while it fires, report the
// incident on /alerts and /api/query, and export an -alerts-out report
// that records the fire.
func TestRunAlertsSlowdown(t *testing.T) {
	dir := t.TempDir()
	addrPath := filepath.Join(dir, "ops.addr")
	alertsPath := filepath.Join(dir, "alerts.json")
	opts := options{
		id: "exttrainfaults", seed: 1, quick: true,
		faultsSeed: 7, faultsProfile: "slowdown",
		outPath:        filepath.Join(dir, "report.txt"),
		opsAddr:        "127.0.0.1:0",
		opsAddrOut:     addrPath,
		alertsOut:      alertsPath,
		alertsScale:    0.005,
		sampleInterval: 25 * time.Millisecond,
	}
	runErr := make(chan error, 1)
	go func() { runErr <- run(opts) }()
	addr := waitForAddr(t, addrPath)

	// Poll the live surfaces until the critical alert fires: /readyz
	// must gate to 503, /alerts must report the rule firing, and
	// /api/query must serve a positive drift-event rate. The server
	// shuts down when run() returns, so connection errors end the poll;
	// the exported artefact below is then the authoritative check.
	sawGate, sawAlert, sawRate := false, false, false
	for !(sawGate && sawAlert && sawRate) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			break
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable &&
			strings.Contains(string(body), "critical alert") {
			sawGate = true
		}
		if resp, err = http.Get("http://" + addr + "/alerts"); err == nil {
			var doc alertsDoc
			err := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err == nil && doc.alertState("drift-burn-rate") == "firing" {
				sawAlert = true
			}
		}
		if resp, err = http.Get("http://" + addr +
			"/api/query?op=rate&series=convmeter_drift_events_total&window=2s"); err == nil {
			var q struct {
				OK   bool    `json:"ok"`
				Rate float64 `json:"rate_per_second"`
			}
			err := json.NewDecoder(resp.Body).Decode(&q)
			resp.Body.Close()
			if err == nil && q.OK && q.Rate > 0 {
				sawRate = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if !sawGate || !sawAlert || !sawRate {
		t.Errorf("live surfaces missed the incident: readyz-gate=%t alerts=%t query-rate=%t",
			sawGate, sawAlert, sawRate)
	}

	data, err := os.ReadFile(alertsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc alertsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "convmeter/alerts/v1" {
		t.Fatalf("alerts artefact schema = %q", doc.Schema)
	}
	if !doc.everFired("drift-burn-rate") {
		t.Fatalf("slowdown run never fired drift-burn-rate: %+v", doc)
	}
	if err := checkAlertsReport(data); err != nil {
		t.Fatalf("exported report malformed: %v", err)
	}
}

// TestRunAlertsCleanRun: the identical run under the none profile must
// keep every rule inactive — the alerting false-positive guard at the
// CLI level.
func TestRunAlertsCleanRun(t *testing.T) {
	dir := t.TempDir()
	alertsPath := filepath.Join(dir, "alerts.json")
	opts := options{
		id: "exttrainfaults", seed: 1, quick: true,
		faultsSeed: 7, faultsProfile: "none",
		outPath:        filepath.Join(dir, "report.txt"),
		alertsOut:      alertsPath,
		alertsScale:    0.005,
		sampleInterval: 25 * time.Millisecond,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(alertsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc alertsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Transitions) != 0 {
		t.Fatalf("clean run recorded %d alert transition(s): %+v", len(doc.Transitions), doc.Transitions)
	}
	for _, a := range doc.Alerts {
		if a.State != "inactive" {
			t.Fatalf("clean run left rule %s %s", a.Rule, a.State)
		}
	}
}

// checkAlertsReport re-validates the artefact with the same invariants
// cmd/obscheck -alerts enforces: legal lifecycle edges in monotone
// order, no resolve before a fire.
func checkAlertsReport(data []byte) error {
	var doc struct {
		Transitions []struct {
			Rule string  `json:"rule"`
			From string  `json:"from"`
			To   string  `json:"to"`
			T    float64 `json:"t_seconds"`
		} `json:"transitions"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	last := map[string]string{}
	prevT := -1.0
	for _, tr := range doc.Transitions {
		if tr.T < prevT {
			return errNonMonotone
		}
		prevT = tr.T
		from := last[tr.Rule]
		if from == "" {
			from = "inactive"
		}
		if tr.From != from || (tr.To == "resolved" && tr.From != "firing") {
			return errBadEdge
		}
		last[tr.Rule] = tr.To
	}
	return nil
}

var (
	errNonMonotone = jsonError("transition timestamps not monotone")
	errBadEdge     = jsonError("illegal lifecycle edge")
)

type jsonError string

func (e jsonError) Error() string { return string(e) }
