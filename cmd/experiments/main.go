// Command experiments reproduces the paper's evaluation: every table and
// figure, end to end (dataset generation → fitting → leave-one-model-out
// evaluation → rendered tables). Its full-scale output is recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1 -seed 7
//	experiments -run fig8 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"convmeter"
)

func main() {
	id := flag.String("run", "all", "experiment id (fig2, table1, table2, table3single, fig6, table3multi, fig8, fig9, ablation, extvit, extedge, extpipeline, extreal, extstrong) or 'all'")
	seed := flag.Int64("seed", 1, "simulator/fitting seed")
	quick := flag.Bool("quick", false, "use reduced sweeps (for smoke runs)")
	out := flag.String("out", "", "also write the output to this file")
	csvDir := flag.String("csvdir", "", "write figure data series as CSV files into this directory")
	flag.Parse()
	if err := run(*id, *seed, *quick, *out, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(id string, seed int64, quick bool, outPath, csvDir string) (err error) {
	cfg := convmeter.ExperimentConfig{Seed: seed, Quick: quick}
	var results []*convmeter.ExperimentResult
	if id == "all" {
		results, err = convmeter.RunAllExperiments(cfg)
		if err != nil {
			return err
		}
	} else {
		res, err := convmeter.RunExperiment(id, cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	sinks := []io.Writer{os.Stdout}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		// A report that silently lost its tail is worse than an error:
		// surface the close failure unless something already failed.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)
	rule := strings.Repeat("=", 62)
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%s\n%s\n%s\n", rule, res.Title, rule); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, res.Text); err != nil {
			return err
		}
		if csvDir == "" {
			continue
		}
		for name, doc := range res.Series {
			path := filepath.Join(csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
		}
	}
	return nil
}
