// Command experiments reproduces the paper's evaluation: every table and
// figure, end to end (dataset generation → fitting → leave-one-model-out
// evaluation → rendered tables). Its full-scale output is recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1 -seed 7
//	experiments -run fig8 -quick
//
// Runs execute as a dependency DAG (independent experiments in
// parallel); with -dag-dir every completed node commits a fail-close
// manifest, so a killed run resumes from its last committed node:
//
//	experiments -run table1 -dag-dir run1           # killed midway…
//	experiments -run table1 -dag-dir run1           # …resumes here
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"convmeter"
	"convmeter/internal/checkpoint"
	"convmeter/internal/driftwatch"
	"convmeter/internal/faults"
	"convmeter/internal/obs"
	"convmeter/internal/obs/alert"
	"convmeter/internal/obs/critpath"
	"convmeter/internal/obs/ops"
	"convmeter/internal/obs/runtimeprof"
	"convmeter/internal/obs/tsdb"
)

func main() {
	opts := options{}
	flag.StringVar(&opts.id, "run", "all", "experiment id (fig2, table1, table2, table3single, fig6, table3multi, fig8, fig9, ablation, extvit, extedge, extpipeline, extreal, exttrainreal, exttrainfaults, extstrong) or 'all'")
	flag.Int64Var(&opts.seed, "seed", 1, "simulator/fitting seed")
	flag.BoolVar(&opts.quick, "quick", false, "use reduced sweeps (for smoke runs)")
	flag.Int64Var(&opts.faultsSeed, "faults-seed", 0, "fault-injection schedule seed for exttrainfaults (0 = use -seed); the same seed reproduces the identical fault schedule")
	flag.StringVar(&opts.faultsProfile, "faults-profile", "", "fault profile for exttrainfaults: none, light, heavy, chaos or slowdown (default chaos)")
	flag.StringVar(&opts.checkpointPath, "checkpoint", "", "checkpoint file: completed experiments and LOMO evaluations are recorded here and skipped on re-run, so a killed sweep resumes from the last completed unit")
	flag.StringVar(&opts.outPath, "out", "", "also write the output to this file")
	flag.StringVar(&opts.csvDir, "csvdir", "", "write figure data series as CSV files into this directory")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "write collected runtime metrics to this file (Prometheus text; JSONL when the path ends in .jsonl)")
	flag.StringVar(&opts.traceOut, "trace-out", "", "write recorded spans as Chrome trace-event JSON to this file (open in Perfetto)")
	flag.StringVar(&opts.opsAddr, "ops-addr", "", "serve the live ops endpoints (/metrics, /healthz, /readyz, /trace, /drift, /critpath, /api/query, /alerts, /profiles, /dashboard, /debug/pprof) on this address (e.g. localhost:6060) while experiments run; off by default")
	flag.StringVar(&opts.opsAddrOut, "ops-addr-out", "", "write the ops server's actual bound address to this file (useful with -ops-addr :0)")
	flag.StringVar(&opts.driftOut, "drift-out", "", "write the final drift-monitor state as JSON to this file")
	flag.BoolVar(&opts.driftRefit, "drift-refit", false, "on a drift event, recalibrate the affected stream onto the new regime instead of staying latched")
	flag.StringVar(&opts.critpathOut, "critpath-out", "", "write the chaos trainer's per-step critical-path attribution report as JSON to this file (also enables clock alignment and /critpath)")
	flag.StringVar(&opts.alertsOut, "alerts-out", "", "write the final alert report (schema convmeter/alerts/v1) as JSON to this file; enables the in-process retention store and alert engine")
	flag.Float64Var(&opts.alertsScale, "alerts-scale", 1, "scale factor applied to the built-in alert rules' SLO windows and latches (1 = production cadence; 0.005 compresses 5m to 1.5s for smoke runs)")
	flag.DurationVar(&opts.sampleInterval, "sample-interval", time.Second, "retention-store sampling and alert evaluation cadence")
	flag.StringVar(&opts.dagDir, "dag-dir", "", "durable run directory: every completed DAG node commits a content-addressed manifest here, and a re-run over the same directory resumes fail-close from fingerprint-matching manifests")
	flag.IntVar(&opts.dagWorkers, "dag-workers", 2, "worker pool size for independent DAG nodes")
	flag.StringVar(&opts.dagCrash, "dag-crash", "", "inject a process crash at node@point (point: boundary or mid) for crash-resume testing; the run dies with exit code 3 and resumes via -dag-dir")
	flag.StringVar(&opts.dagOut, "dag-out", "", "write the DAG audit trail (per-node state, manifest hash, attempt, blame) as JSON to this file")
	flag.Parse()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, convmeter.ErrDagCrashed) {
			// Distinguish an injected kill (resumable) from a real failure:
			// dag-smoke asserts on this exit code.
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// options carries the full flag surface of one invocation.
type options struct {
	id                   string
	seed                 int64
	quick                bool
	faultsSeed           int64
	faultsProfile        string
	checkpointPath       string
	outPath, csvDir      string
	metricsOut, traceOut string
	opsAddr, opsAddrOut  string
	driftOut             string
	driftRefit           bool
	critpathOut          string
	alertsOut            string
	alertsScale          float64
	sampleInterval       time.Duration
	dagDir               string
	dagWorkers           int
	dagCrash             string
	dagOut               string
}

// dagFaults builds the orchestrator-level crash injector for -dag-crash.
func dagFaults(opts options, bundle *obs.Obs) (*faults.Injector, error) {
	if opts.dagCrash == "" {
		return nil, nil
	}
	node, point, ok := strings.Cut(opts.dagCrash, "@")
	if !ok || node == "" {
		return nil, fmt.Errorf("bad -dag-crash %q, want node@point (e.g. lomo@boundary)", opts.dagCrash)
	}
	seed := opts.faultsSeed
	if seed == 0 {
		seed = opts.seed
	}
	prof := faults.Profile{NodeCrashes: map[string]string{node: point}}
	return faults.New(seed, prof, bundle)
}

func run(opts options) (err error) {
	cfg := convmeter.ExperimentConfig{
		Seed: opts.seed, Quick: opts.quick,
		FaultsSeed: opts.faultsSeed, FaultsProfile: opts.faultsProfile,
	}
	if opts.checkpointPath != "" {
		// The fingerprint binds the file to the settings that shaped its
		// results; changing any of them discards the stale entries.
		fp := fmt.Sprintf("seed=%d quick=%t faults-seed=%d faults-profile=%s",
			opts.seed, opts.quick, opts.faultsSeed, opts.faultsProfile)
		store, err := checkpoint.Open(opts.checkpointPath, fp)
		if err != nil {
			return err
		}
		if n := store.Resumed(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming, %d completed unit(s) loaded from %s\n", n, opts.checkpointPath)
		}
		cfg.Checkpoint = store
	}
	var bundle *obs.Obs
	var mon *driftwatch.Monitor
	var crit *critpath.Tracker
	if opts.metricsOut != "" || opts.traceOut != "" || opts.opsAddr != "" || opts.driftOut != "" || opts.critpathOut != "" || opts.alertsOut != "" {
		bundle = obs.New()
		cfg.Obs = bundle
		dcfg := driftwatch.Config{Obs: bundle}
		if opts.driftRefit {
			dcfg.OnDrift = func(ev driftwatch.Event) {
				fmt.Fprintf(os.Stderr, "experiments: drift event #%d on %s/%s, recalibrating\n",
					ev.Events, ev.Model, ev.Phase)
				ev.Stream.Recalibrate()
			}
		}
		mon = driftwatch.New(dcfg)
		cfg.Drift = mon
	}
	if opts.critpathOut != "" || opts.opsAddr != "" {
		crit = critpath.NewTracker(bundle)
		cfg.Crit = crit
	}
	// The retention store samples the registry on a cadence, the alert
	// engine evaluates the built-in SLO rules against it, and the runtime
	// sampler projects runtime/metrics into the registry so the store
	// retains the process's own health alongside the experiment metrics.
	var db *tsdb.DB
	var eng *alert.Engine
	var prof *runtimeprof.Sampler
	if opts.alertsOut != "" || opts.opsAddr != "" {
		db = tsdb.New(tsdb.Config{Obs: bundle, Interval: opts.sampleInterval})
		eng = alert.New(alert.Config{
			Obs: bundle, DB: db,
			Rules:    alert.BuiltinRules(opts.alertsScale),
			Interval: opts.sampleInterval,
		})
		prof = runtimeprof.New(runtimeprof.Config{Obs: bundle, Interval: opts.sampleInterval})
		prof.Start()
		db.Start()
		eng.Start()
		// Idempotent: the quiesce before the report write stops them
		// first on the happy path; these cover the error returns.
		defer eng.Stop()
		defer db.Stop()
		defer prof.Stop()
	}
	// The run itself is a DAG: independent experiments execute in
	// parallel on a bounded pool, and with -dag-dir every completed node
	// commits a fail-close manifest, making the run crash-resumable.
	ids := []string{opts.id}
	if opts.id == "all" {
		ids = convmeter.ExperimentIDs()
	}
	inj, err := dagFaults(opts, bundle)
	if err != nil {
		return err
	}
	runner, err := convmeter.NewExperimentsDAG(ids, cfg, convmeter.ExperimentsDagConfig{
		Dir: opts.dagDir, Workers: opts.dagWorkers, Faults: inj,
	})
	if err != nil {
		return err
	}
	if opts.opsAddr != "" {
		srv, err := ops.Start(ops.Config{
			Addr: opts.opsAddr, Obs: bundle, Drift: mon, Crit: crit, Dag: runner,
			TSDB: db, Alerts: eng, Prof: prof,
		})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := srv.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		fmt.Fprintf(os.Stderr, "experiments: ops server on http://%s\n", srv.Addr())
		if opts.opsAddrOut != "" {
			if err := os.WriteFile(opts.opsAddrOut, []byte(srv.Addr()+"\n"), 0o644); err != nil {
				return err
			}
		}
	}
	rep, execErr := runner.Execute()
	if opts.dagOut != "" {
		// The audit trail is written even — especially — when the run
		// died: it records which node was killed and what survived.
		f, err := os.Create(opts.dagOut)
		if err != nil {
			return err
		}
		if err := runner.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if execErr != nil {
		if rep != nil && rep.Crashed != "" {
			fmt.Fprintf(os.Stderr, "experiments: run killed at %s; re-run with the same -dag-dir to resume\n", rep.Crashed)
		}
		return execErr
	}
	if rep.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: resumed %d node(s) from manifests in %s\n", rep.Resumed, opts.dagDir)
	}
	results, err := convmeter.CollectExperimentsDAG(runner)
	if err != nil {
		return err
	}
	if err := bundle.Export(opts.metricsOut, opts.traceOut); err != nil {
		return err
	}
	if opts.driftOut != "" {
		f, err := os.Create(opts.driftOut)
		if err != nil {
			return err
		}
		if err := mon.WriteJSON(f); err != nil {
			// The write failure is the error worth reporting.
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if opts.critpathOut != "" {
		f, err := os.Create(opts.critpathOut)
		if err != nil {
			return err
		}
		if err := crit.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if opts.alertsOut != "" {
		// Quiesce the loops, take one final synchronous sweep so metric
		// increments from the run's tail are retained and judged, then
		// export. Stop is idempotent; the deferred stops become no-ops.
		eng.Stop()
		db.Stop()
		prof.Stop()
		now := db.Now()
		db.Sync()
		db.Sample(now)
		eng.Eval(now)
		f, err := os.Create(opts.alertsOut)
		if err != nil {
			return err
		}
		if err := eng.WriteJSON(f, now); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	sinks := []io.Writer{os.Stdout}
	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			return err
		}
		// A report that silently lost its tail is worse than an error:
		// surface the close failure unless something already failed.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)
	rule := strings.Repeat("=", 62)
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%s\n%s\n%s\n", rule, res.Title, rule); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, res.Text); err != nil {
			return err
		}
		if opts.csvDir == "" {
			continue
		}
		for name, doc := range res.Series {
			path := filepath.Join(opts.csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
		}
	}
	return nil
}
