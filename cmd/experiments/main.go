// Command experiments reproduces the paper's evaluation: every table and
// figure, end to end (dataset generation → fitting → leave-one-model-out
// evaluation → rendered tables). Its full-scale output is recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1 -seed 7
//	experiments -run fig8 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"convmeter"
)

func main() {
	run := flag.String("run", "all", "experiment id (fig2, table1, table2, table3single, fig6, table3multi, fig8, fig9, ablation, extvit, extedge, extpipeline, extreal, extstrong) or 'all'")
	seed := flag.Int64("seed", 1, "simulator/fitting seed")
	quick := flag.Bool("quick", false, "use reduced sweeps (for smoke runs)")
	out := flag.String("out", "", "also write the output to this file")
	csvDir := flag.String("csvdir", "", "write figure data series as CSV files into this directory")
	flag.Parse()

	cfg := convmeter.ExperimentConfig{Seed: *seed, Quick: *quick}
	var results []*convmeter.ExperimentResult
	if *run == "all" {
		all, err := convmeter.RunAllExperiments(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		results = all
	} else {
		res, err := convmeter.RunExperiment(*run, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)
	for _, res := range results {
		fmt.Fprintf(w, "==============================================================\n")
		fmt.Fprintf(w, "%s\n", res.Title)
		fmt.Fprintf(w, "==============================================================\n")
		fmt.Fprintln(w, res.Text)
		if *csvDir != "" {
			for name, doc := range res.Series {
				path := filepath.Join(*csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
			}
		}
	}
}
