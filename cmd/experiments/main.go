// Command experiments reproduces the paper's evaluation: every table and
// figure, end to end (dataset generation → fitting → leave-one-model-out
// evaluation → rendered tables). Its full-scale output is recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1 -seed 7
//	experiments -run fig8 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"convmeter"
	"convmeter/internal/checkpoint"
	"convmeter/internal/driftwatch"
	"convmeter/internal/obs"
	"convmeter/internal/obs/critpath"
	"convmeter/internal/obs/ops"
)

func main() {
	opts := options{}
	flag.StringVar(&opts.id, "run", "all", "experiment id (fig2, table1, table2, table3single, fig6, table3multi, fig8, fig9, ablation, extvit, extedge, extpipeline, extreal, exttrainreal, exttrainfaults, extstrong) or 'all'")
	flag.Int64Var(&opts.seed, "seed", 1, "simulator/fitting seed")
	flag.BoolVar(&opts.quick, "quick", false, "use reduced sweeps (for smoke runs)")
	flag.Int64Var(&opts.faultsSeed, "faults-seed", 0, "fault-injection schedule seed for exttrainfaults (0 = use -seed); the same seed reproduces the identical fault schedule")
	flag.StringVar(&opts.faultsProfile, "faults-profile", "", "fault profile for exttrainfaults: none, light, heavy, chaos or slowdown (default chaos)")
	flag.StringVar(&opts.checkpointPath, "checkpoint", "", "checkpoint file: completed experiments and LOMO evaluations are recorded here and skipped on re-run, so a killed sweep resumes from the last completed unit")
	flag.StringVar(&opts.outPath, "out", "", "also write the output to this file")
	flag.StringVar(&opts.csvDir, "csvdir", "", "write figure data series as CSV files into this directory")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "write collected runtime metrics to this file (Prometheus text; JSONL when the path ends in .jsonl)")
	flag.StringVar(&opts.traceOut, "trace-out", "", "write recorded spans as Chrome trace-event JSON to this file (open in Perfetto)")
	flag.StringVar(&opts.opsAddr, "ops-addr", "", "serve the live ops endpoints (/metrics, /healthz, /readyz, /trace, /drift, /critpath, /debug/pprof) on this address (e.g. localhost:6060) while experiments run; off by default")
	flag.StringVar(&opts.opsAddrOut, "ops-addr-out", "", "write the ops server's actual bound address to this file (useful with -ops-addr :0)")
	flag.StringVar(&opts.driftOut, "drift-out", "", "write the final drift-monitor state as JSON to this file")
	flag.BoolVar(&opts.driftRefit, "drift-refit", false, "on a drift event, recalibrate the affected stream onto the new regime instead of staying latched")
	flag.StringVar(&opts.critpathOut, "critpath-out", "", "write the chaos trainer's per-step critical-path attribution report as JSON to this file (also enables clock alignment and /critpath)")
	flag.Parse()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// options carries the full flag surface of one invocation.
type options struct {
	id                   string
	seed                 int64
	quick                bool
	faultsSeed           int64
	faultsProfile        string
	checkpointPath       string
	outPath, csvDir      string
	metricsOut, traceOut string
	opsAddr, opsAddrOut  string
	driftOut             string
	driftRefit           bool
	critpathOut          string
}

func run(opts options) (err error) {
	cfg := convmeter.ExperimentConfig{
		Seed: opts.seed, Quick: opts.quick,
		FaultsSeed: opts.faultsSeed, FaultsProfile: opts.faultsProfile,
	}
	if opts.checkpointPath != "" {
		// The fingerprint binds the file to the settings that shaped its
		// results; changing any of them discards the stale entries.
		fp := fmt.Sprintf("seed=%d quick=%t faults-seed=%d faults-profile=%s",
			opts.seed, opts.quick, opts.faultsSeed, opts.faultsProfile)
		store, err := checkpoint.Open(opts.checkpointPath, fp)
		if err != nil {
			return err
		}
		if n := store.Resumed(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming, %d completed unit(s) loaded from %s\n", n, opts.checkpointPath)
		}
		cfg.Checkpoint = store
	}
	var bundle *obs.Obs
	var mon *driftwatch.Monitor
	var crit *critpath.Tracker
	if opts.metricsOut != "" || opts.traceOut != "" || opts.opsAddr != "" || opts.driftOut != "" || opts.critpathOut != "" {
		bundle = obs.New()
		cfg.Obs = bundle
		dcfg := driftwatch.Config{Obs: bundle}
		if opts.driftRefit {
			dcfg.OnDrift = func(ev driftwatch.Event) {
				fmt.Fprintf(os.Stderr, "experiments: drift event #%d on %s/%s, recalibrating\n",
					ev.Events, ev.Model, ev.Phase)
				ev.Stream.Recalibrate()
			}
		}
		mon = driftwatch.New(dcfg)
		cfg.Drift = mon
	}
	if opts.critpathOut != "" || opts.opsAddr != "" {
		crit = critpath.NewTracker(bundle)
		cfg.Crit = crit
	}
	if opts.opsAddr != "" {
		srv, err := ops.Start(ops.Config{Addr: opts.opsAddr, Obs: bundle, Drift: mon, Crit: crit})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := srv.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		fmt.Fprintf(os.Stderr, "experiments: ops server on http://%s\n", srv.Addr())
		if opts.opsAddrOut != "" {
			if err := os.WriteFile(opts.opsAddrOut, []byte(srv.Addr()+"\n"), 0o644); err != nil {
				return err
			}
		}
	}
	var results []*convmeter.ExperimentResult
	if opts.id == "all" {
		results, err = convmeter.RunAllExperiments(cfg)
		if err != nil {
			return err
		}
	} else {
		res, err := convmeter.RunExperiment(opts.id, cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	if err := bundle.Export(opts.metricsOut, opts.traceOut); err != nil {
		return err
	}
	if opts.driftOut != "" {
		f, err := os.Create(opts.driftOut)
		if err != nil {
			return err
		}
		if err := mon.WriteJSON(f); err != nil {
			// The write failure is the error worth reporting.
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if opts.critpathOut != "" {
		f, err := os.Create(opts.critpathOut)
		if err != nil {
			return err
		}
		if err := crit.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	sinks := []io.Writer{os.Stdout}
	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			return err
		}
		// A report that silently lost its tail is worse than an error:
		// surface the close failure unless something already failed.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)
	rule := strings.Repeat("=", 62)
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "%s\n%s\n%s\n", rule, res.Title, rule); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, res.Text); err != nil {
			return err
		}
		if opts.csvDir == "" {
			continue
		}
		for name, doc := range res.Series {
			path := filepath.Join(opts.csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
		}
	}
	return nil
}
