package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// driftDoc mirrors the /drift and -drift-out JSON layout.
type driftDoc struct {
	Streams []struct {
		Model  string `json:"model"`
		Phase  string `json:"phase"`
		State  string `json:"state"`
		Pairs  int    `json:"pairs"`
		Events int    `json:"events"`
	} `json:"streams"`
	Events int `json:"events_total"`
}

// TestRunWithOpsServer is the live-observability acceptance test: while a
// chaos run with a slowdown profile executes, concurrent scrapers hit the
// ops server's /metrics and /drift endpoints; by the end the drift stream
// must have latched drifting with at least one drift event, and the
// -drift-out artefact must agree with what /drift served.
func TestRunWithOpsServer(t *testing.T) {
	dir := t.TempDir()
	addrPath := filepath.Join(dir, "ops.addr")
	driftPath := filepath.Join(dir, "drift.json")
	opts := options{
		id: "exttrainfaults", seed: 1, quick: true,
		faultsSeed: 7, faultsProfile: "slowdown",
		outPath:    filepath.Join(dir, "report.txt"),
		opsAddr:    "127.0.0.1:0",
		opsAddrOut: addrPath,
		driftOut:   driftPath,
	}
	runErr := make(chan error, 1)
	go func() { runErr <- run(opts) }()

	// The run writes the bound address once the listener is up.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("ops address file never appeared")
		}
		if data, err := os.ReadFile(addrPath); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Concurrent live scrapes while the experiment runs. The server shuts
	// down when run() returns, so connection errors near the end are
	// expected; what must never happen is a malformed 200 response.
	var wg sync.WaitGroup
	var mu sync.Mutex
	sawMetrics, sawDrift := false, false
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for _, path := range []string{"/metrics", "/drift", "/healthz"} {
					resp, err := http.Get("http://" + addr + path)
					if err != nil {
						return // server already closed
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						continue
					}
					mu.Lock()
					switch path {
					case "/metrics":
						if strings.Contains(string(body), "convmeter_") {
							sawMetrics = true
						}
					case "/drift":
						if json.Valid(body) {
							sawDrift = true
						}
					}
					mu.Unlock()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if !sawMetrics || !sawDrift {
		t.Fatalf("live scrapes incomplete: metrics=%t drift=%t", sawMetrics, sawDrift)
	}

	var doc driftDoc
	data, err := os.ReadFile(driftPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Streams) != 1 || doc.Streams[0].Model != "trainreal" || doc.Streams[0].Phase != "iter" {
		t.Fatalf("drift artefact = %+v, want the trainreal/iter stream", doc)
	}
	if doc.Streams[0].State != "drifting" || doc.Events < 1 {
		t.Fatalf("slowdown run did not drift: %+v", doc)
	}
}

// TestRunDriftCleanRun: the identical run under the none profile must
// report zero drift events — the detector's false-positive guard at the
// CLI level.
func TestRunDriftCleanRun(t *testing.T) {
	dir := t.TempDir()
	driftPath := filepath.Join(dir, "drift.json")
	opts := options{
		id: "exttrainfaults", seed: 1, quick: true,
		faultsSeed: 7, faultsProfile: "none",
		outPath:  filepath.Join(dir, "report.txt"),
		driftOut: driftPath,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	var doc driftDoc
	data, err := os.ReadFile(driftPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Events != 0 {
		t.Fatalf("clean run raised %d drift events: %+v", doc.Events, doc)
	}
	if len(doc.Streams) != 1 || doc.Streams[0].Pairs == 0 {
		t.Fatalf("clean run fed no pairs: %+v", doc)
	}
}

// TestRunDriftRefit: with -drift-refit the monitor recalibrates on each
// event instead of latching, so the final state is not stuck on drifting.
func TestRunDriftRefit(t *testing.T) {
	dir := t.TempDir()
	driftPath := filepath.Join(dir, "drift.json")
	opts := options{
		id: "exttrainfaults", seed: 1, quick: true,
		faultsSeed: 7, faultsProfile: "slowdown",
		outPath:    filepath.Join(dir, "report.txt"),
		driftOut:   driftPath,
		driftRefit: true,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	var doc driftDoc
	data, err := os.ReadFile(driftPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Events < 1 {
		t.Fatalf("refit run saw no drift event: %+v", doc)
	}
	if doc.Streams[0].State == "drifting" {
		t.Fatalf("refit left the stream latched: %+v", doc)
	}
}
