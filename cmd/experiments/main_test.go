package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"convmeter"
)

// TestRunWithTelemetry is the acceptance test for the telemetry flags: a
// real exttrainreal run with -metrics-out and -trace-out must produce a
// Prometheus metrics file whose step counter matches the training loop
// and a Chrome trace whose fwd/bwd/grad events are time-contained within
// the experiment event.
func TestRunWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	tracePath := filepath.Join(dir, "trace.json")
	outPath := filepath.Join(dir, "report.txt")
	opts := options{
		id: "exttrainreal", seed: 5, quick: true,
		outPath: outPath, metricsOut: metricsPath, traceOut: tracePath,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}

	// Metrics: parse the exposition text into name -> value and check the
	// training-loop counters against the quick fixture's known shape
	// (2 workers × 6 steps).
	values := parsePromFile(t, metricsPath)
	const wantSteps = 6
	if got := values["convmeter_train_steps_total"]; got != wantSteps {
		t.Fatalf("convmeter_train_steps_total = %g, want %d", got, wantSteps)
	}
	if got := values["convmeter_experiments_total"]; got != 1 {
		t.Fatalf("convmeter_experiments_total = %g, want 1", got)
	}
	if got := values[`convmeter_allreduce_steps_total{transport="chan"}`]; got == 0 {
		t.Fatal("no allreduce steps recorded")
	}
	convmeterSamples := 0
	for name := range values {
		if strings.HasPrefix(name, "convmeter_") {
			convmeterSamples++
		}
	}
	if convmeterSamples < 10 {
		t.Fatalf("only %d convmeter_ samples; the run barely recorded anything", convmeterSamples)
	}

	// Trace: fwd/bwd/grad events must sit inside the experiment event.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TsUS  float64 `json:"ts"`
			DurUS float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var expStart, expEnd float64
	haveExp := false
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && e.Name == "experiment:exttrainreal" {
			expStart, expEnd = e.TsUS, e.TsUS+e.DurUS
			haveExp = true
		}
	}
	if !haveExp {
		t.Fatal("trace has no experiment:exttrainreal event")
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		switch e.Name {
		case "fwd", "bwd", "grad":
			counts[e.Name]++
			if e.TsUS < expStart || e.TsUS+e.DurUS > expEnd {
				t.Fatalf("%s event [%g, %g] escapes the experiment window [%g, %g]",
					e.Name, e.TsUS, e.TsUS+e.DurUS, expStart, expEnd)
			}
		}
	}
	if counts["grad"] != wantSteps {
		t.Fatalf("%d grad events, want %d", counts["grad"], wantSteps)
	}
	if counts["fwd"] == 0 || counts["bwd"] == 0 {
		t.Fatalf("missing exec events: %v", counts)
	}

	// The report itself must still have been written.
	report, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "data-parallel training") {
		t.Fatal("report missing experiment output")
	}
}

// TestRunChaosWithCheckpoint is the acceptance test for the fault flags:
// a seeded exttrainfaults run must survive the chaos profile (crash,
// drops, corruption — the experiment asserts survivor correctness
// itself), export positive fault counters, and resume from its
// checkpoint on re-run.
func TestRunChaosWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	ckptPath := filepath.Join(dir, "ckpt.json")
	opts := options{
		id: "exttrainfaults", seed: 1, quick: true, faultsSeed: 7,
		outPath:        filepath.Join(dir, "report.txt"),
		metricsOut:     metricsPath,
		checkpointPath: ckptPath,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	values := parsePromFile(t, metricsPath)
	for _, class := range []string{"crash", "drop", "corrupt"} {
		series := `convmeter_faults_injected_total{class="` + class + `"}`
		if values[series] < 1 {
			t.Fatalf("%s = %g, want >= 1", series, values[series])
		}
	}
	if values["convmeter_train_workers_removed_total"] < 1 {
		t.Fatal("no worker removal recorded despite the scheduled crash")
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	// Re-run against the same checkpoint: the experiment is served from
	// the store, so the trainer never runs and its counters stay dark.
	metrics2 := filepath.Join(dir, "metrics2.prom")
	opts.metricsOut = metrics2
	opts.outPath = filepath.Join(dir, "report2.txt")
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	values2 := parsePromFile(t, metrics2)
	if got := values2["convmeter_experiments_resumed_total"]; got != 1 {
		t.Fatalf("convmeter_experiments_resumed_total = %g, want 1", got)
	}
	if got := values2["convmeter_train_steps_total"]; got != 0 {
		t.Fatalf("resumed run re-trained: %g steps", got)
	}
	report, err := os.ReadFile(opts.outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "survivor checksums identical") {
		t.Fatal("resumed report missing the cached experiment text")
	}
}

// TestRunWithoutTelemetry keeps the default path dark: no flags, no files.
func TestRunWithoutTelemetry(t *testing.T) {
	dir := t.TempDir()
	opts := options{
		id: "fig2", seed: 5, quick: true,
		outPath: filepath.Join(dir, "report.txt"),
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files in out dir, want only the report", len(entries))
	}
}

// TestRunDagCrashResume is the CLI-level leg of the crash-resume proof:
// a -dag-crash run dies with ErrDagCrashed after committing its
// upstream manifests, and a plain re-run over the same -dag-dir resumes
// and produces a report byte-identical to an uninterrupted run.
func TestRunDagCrashResume(t *testing.T) {
	dir := t.TempDir()
	base := options{
		id: "table1", seed: 5, quick: true, faultsSeed: 7,
		dagWorkers: 2,
	}

	clean := base
	clean.dagDir = filepath.Join(dir, "clean")
	clean.outPath = filepath.Join(dir, "clean.txt")
	if err := run(clean); err != nil {
		t.Fatal(err)
	}

	crashed := base
	crashed.dagDir = filepath.Join(dir, "resume")
	crashed.dagCrash = "lomo@boundary"
	crashed.dagOut = filepath.Join(dir, "crashed-dag.json")
	err := run(crashed)
	if !errors.Is(err, convmeter.ErrDagCrashed) {
		t.Fatalf("crash run err = %v, want ErrDagCrashed", err)
	}
	audit, err := os.ReadFile(crashed.dagOut)
	if err != nil {
		t.Fatal(err)
	}
	var dagDoc struct {
		Crashed string `json:"crashed"`
		Nodes   []struct {
			ID       string `json:"id"`
			State    string `json:"state"`
			Manifest string `json:"manifest"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(audit, &dagDoc); err != nil {
		t.Fatalf("-dag-out invalid JSON: %v\n%s", err, audit)
	}
	if dagDoc.Crashed != "lomo@boundary" {
		t.Fatalf("audit blames %q, want lomo@boundary", dagDoc.Crashed)
	}
	for _, n := range dagDoc.Nodes {
		if n.ID == "fit" && (n.State != "done" || n.Manifest == "") {
			t.Fatalf("fit should have committed before the kill: %+v", n)
		}
	}

	resume := base
	resume.dagDir = crashed.dagDir
	resume.outPath = filepath.Join(dir, "resumed.txt")
	resume.dagOut = filepath.Join(dir, "resumed-dag.json")
	if err := run(resume); err != nil {
		t.Fatalf("resume: %v", err)
	}
	cleanReport, err := os.ReadFile(clean.outPath)
	if err != nil {
		t.Fatal(err)
	}
	resumedReport, err := os.ReadFile(resume.outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(cleanReport) != string(resumedReport) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- clean ---\n%s\n--- resumed ---\n%s",
			cleanReport, resumedReport)
	}
	audit2, err := os.ReadFile(resume.dagOut)
	if err != nil {
		t.Fatal(err)
	}
	var resumedDoc struct {
		Resumed int `json:"resumed"`
	}
	if err := json.Unmarshal(audit2, &resumedDoc); err != nil {
		t.Fatal(err)
	}
	if resumedDoc.Resumed != 1 {
		t.Fatalf("resume reused %d node(s), want 1 (fit)", resumedDoc.Resumed)
	}
}

// parsePromFile reads a Prometheus text file into series -> value.
func parsePromFile(t *testing.T, path string) map[string]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	values := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return values
}
