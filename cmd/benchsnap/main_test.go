package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: convmeter
cpu: whatever
BenchmarkZeta-8        	     100	     12345 ns/op	     128 B/op	       3 allocs/op
BenchmarkAlpha-8       	    5000	       321.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkThroughput-8  	     200	      5000 ns/op	  123.45 MB/s	      64 B/op	       1 allocs/op
BenchmarkBare-8        	    1000	      1000 ns/op
PASS
ok  	convmeter	1.234s
`

func TestBuildSnapshot(t *testing.T) {
	snap, err := buildSnapshot(strings.Split(sampleOutput, "\n"), "1x")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SchemaV1 {
		t.Fatalf("schema = %q", snap.Schema)
	}
	names := make([]string, len(snap.Benchmarks))
	for i, b := range snap.Benchmarks {
		names[i] = b.Name
	}
	want := []string{"BenchmarkAlpha-8", "BenchmarkBare-8", "BenchmarkThroughput-8", "BenchmarkZeta-8"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("sorted names = %v, want %v", names, want)
	}
	z := snap.Benchmarks[3]
	if z.Iterations != 100 || z.NsPerOp != 12345 || z.BytesPerOp != 128 || z.AllocsPerOp != 3 {
		t.Fatalf("Zeta parsed as %+v", z)
	}
	th := snap.Benchmarks[2]
	if th.MBPerS != 123.45 || th.AllocsPerOp != 1 {
		t.Fatalf("Throughput parsed as %+v", th)
	}
	bare := snap.Benchmarks[1]
	if bare.NsPerOp != 1000 || bare.BytesPerOp != 0 || bare.AllocsPerOp != 0 {
		t.Fatalf("Bare parsed as %+v", bare)
	}
}

func TestBuildSnapshotMergesRepeatedRuns(t *testing.T) {
	// go test -count=3 repeats each benchmark; the snapshot keeps the
	// fastest ns/op and the worst allocation profile.
	runs := "BenchmarkX-8 100 12 ns/op 8 B/op 1 allocs/op\n" +
		"BenchmarkX-8 120 10 ns/op 8 B/op 1 allocs/op\n" +
		"BenchmarkX-8 90 15 ns/op 16 B/op 2 allocs/op\n"
	snap, err := buildSnapshot(strings.Split(runs, "\n"), "1x")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1 merged", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.NsPerOp != 10 || b.AllocsPerOp != 2 || b.BytesPerOp != 16 || b.Iterations != 120 {
		t.Fatalf("merged benchmark = %+v", b)
	}
}

func TestBuildSnapshotRejectsEmpty(t *testing.T) {
	if _, err := buildSnapshot([]string{"PASS", "ok"}, "1x"); err == nil {
		t.Fatal("benchmark-free output must be rejected")
	}
}

func TestCompare(t *testing.T) {
	base := newSnapshot("1x")
	base.Benchmarks = []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 100, AllocsPerOp: 0, Iterations: 1},
		{Name: "BenchmarkHot", NsPerOp: 1000, AllocsPerOp: 0, Iterations: 1},
		{Name: "BenchmarkRetired", NsPerOp: 50, Iterations: 1},
	}
	cur := newSnapshot("1x")
	cur.Benchmarks = []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 110, AllocsPerOp: 0, Iterations: 1},  // +10%: within threshold
		{Name: "BenchmarkHot", NsPerOp: 1200, AllocsPerOp: 2, Iterations: 1},  // +20% and new allocs
		{Name: "BenchmarkFresh", NsPerOp: 10, AllocsPerOp: 99, Iterations: 1}, // no baseline: tolerated
	}
	var log strings.Builder
	regs := compare(base, cur, 0.15, &log)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want ns/op + allocs on BenchmarkHot", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "BenchmarkHot") {
			t.Fatalf("unexpected regression %q", r)
		}
	}
	if !strings.Contains(log.String(), "BenchmarkFresh") || !strings.Contains(log.String(), "BenchmarkRetired") {
		t.Fatalf("one-sided benchmarks not reported: %q", log.String())
	}
	if regs := compare(base, base, 0.15, &log); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
}

func TestRetryRegexp(t *testing.T) {
	regs := []string{
		"BenchmarkDataParallelStep/workers=4-8: 1100 ns/op vs baseline 900 (+22%, threshold 15%)",
		"BenchmarkDataParallelStep/workers=2-8: 1100 ns/op vs baseline 900 (+22%, threshold 15%)",
		"BenchmarkRingAllReduce: 1100 ns/op vs baseline 900 (+22%, threshold 15%)",
		"BenchmarkHot: 2 allocs/op, baseline 0 (zero-alloc contract broken)",
	}
	got := retryRegexp(regs)
	want := "^(BenchmarkDataParallelStep|BenchmarkRingAllReduce)$"
	if got != want {
		t.Fatalf("retryRegexp = %q, want %q", got, want)
	}
	if re := retryRegexp(regs[3:]); re != "" {
		t.Fatalf("alloc-only regressions produced regexp %q, want none", re)
	}
}
