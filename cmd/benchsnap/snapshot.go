package main

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
)

// SchemaV1 identifies the snapshot format; obscheck -bench validates
// files claiming it.
const SchemaV1 = "convmeter/bench-snapshot/v1"

// Snapshot is one benchmark baseline. Benchmarks are sorted by name so
// committed snapshots diff cleanly.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// benchLine matches the standard benchmark output format, e.g.
//
//	BenchmarkFoo-8   1000   1234 ns/op   12.50 MB/s   56 B/op   7 allocs/op
//
// The MB/s, B/op and allocs/op columns are each optional but ordered.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op` +
		`(?:\s+([0-9.]+) MB/s)?` +
		`(?:\s+(\d+) B/op)?` +
		`(?:\s+(\d+) allocs/op)?`)

// buildSnapshot parses raw `go test -bench` output lines into a sorted
// snapshot. A benchmark appearing multiple times (go test -count > 1)
// is merged: minimum ns/op — the measurement least polluted by
// scheduler noise — and maximum bytes/allocs per op, so the alloc
// contract reflects the worst observed run.
func buildSnapshot(lines []string, benchtime string) (*Snapshot, error) {
	snap := newSnapshot(benchtime)
	byName := map[string]*Benchmark{}
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.MBPerS, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		prev, ok := byName[b.Name]
		if !ok {
			c := b
			byName[b.Name] = &c
			snap.Benchmarks = append(snap.Benchmarks, Benchmark{Name: b.Name})
			continue
		}
		prev.NsPerOp = min(prev.NsPerOp, b.NsPerOp)
		prev.MBPerS = max(prev.MBPerS, b.MBPerS)
		prev.BytesPerOp = max(prev.BytesPerOp, b.BytesPerOp)
		prev.AllocsPerOp = max(prev.AllocsPerOp, b.AllocsPerOp)
		prev.Iterations = max(prev.Iterations, b.Iterations)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	for i := range snap.Benchmarks {
		snap.Benchmarks[i] = *byName[snap.Benchmarks[i].Name]
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// compare diffs cur against base and returns the regressions: ns/op
// beyond the fractional threshold, or a 0-allocs/op benchmark that now
// allocates (threshold-free — the zero-alloc contract is binary).
// Benchmarks present on only one side are reported to w but tolerated,
// so adding or retiring a benchmark does not break the check.
func compare(base, cur *Snapshot, threshold float64, w io.Writer) []string {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var regressions []string
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			_, _ = fmt.Fprintf(w, "benchsnap: %s: new benchmark (no baseline)\n", c.Name)
			continue
		}
		delete(baseBy, c.Name)
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op, baseline 0 (zero-alloc contract broken)",
				c.Name, c.AllocsPerOp))
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (+%.0f%%, threshold %.0f%%)",
				c.Name, c.NsPerOp, b.NsPerOp,
				(c.NsPerOp/b.NsPerOp-1)*100, threshold*100))
		}
	}
	// Deterministic report order for the survivors of the map walk.
	var missing []string
	for name := range baseBy {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		_, _ = fmt.Fprintf(w, "benchsnap: %s: in baseline but not measured\n", name)
	}
	return regressions
}
