// Command benchsnap captures the repository's benchmark baseline: it
// runs the `go test -bench` suites, parses the standard benchmark
// output and writes a benchstat-comparable JSON snapshot
// (schema convmeter/bench-snapshot/v1, validated by obscheck -bench).
// The committed BENCH_<n>.json files record the perf trajectory; in
// -check mode benchsnap re-runs the suites and fails when any
// benchmark regresses beyond the ns/op threshold against a committed
// baseline, or when a 0-allocs/op benchmark starts allocating — the
// dynamic counterpart of the hotpath analyzer's static contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("out", "", "write the snapshot JSON to this file")
	check := flag.String("check", "", "baseline snapshot to compare a fresh run against; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.15, "fractional ns/op regression tolerated in -check mode")
	benchRe := flag.String("bench", ".", "benchmark selection regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "20ms", "go test -benchtime value; time-based so micro-benchmarks get enough iterations to beat timer granularity while the experiment benches stay cheap")
	count := flag.Int("count", 5, "go test -count value; repeated measurements are merged by min ns/op to filter scheduler and GC noise")
	pkgs := flag.String("pkgs", "./,./internal/obs", "comma-separated packages whose benchmarks form the baseline")
	input := flag.String("input", "", "parse this `go test -bench` output file instead of running the benchmarks")
	flag.Parse()
	if *out == "" && *check == "" {
		fmt.Fprintln(os.Stderr, "benchsnap: nothing to do (pass -out and/or -check)")
		os.Exit(2)
	}
	var lines []string
	if *input != "" {
		data, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		lines = strings.Split(string(data), "\n")
	} else {
		for _, pkg := range strings.Split(*pkgs, ",") {
			text, err := runBench(pkg, *benchRe, *benchtime, *count)
			if err != nil {
				fatal(err)
			}
			lines = append(lines, strings.Split(text, "\n")...)
		}
	}
	snap, err := buildSnapshot(lines, *benchtime)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
	if *check != "" {
		base, err := readSnapshot(*check)
		if err != nil {
			fatal(err)
		}
		regressions := compare(base, snap, *threshold, os.Stdout)
		// A regression may be machine load, not code: re-measure only the
		// offending benchmarks and keep the per-benchmark minimum. The
		// minimum is monotone under more samples while the baseline is
		// fixed, so genuine regressions survive and noise converges away.
		for retry := 0; len(regressions) > 0 && retry < 3 && *input == ""; retry++ {
			re := retryRegexp(regressions)
			if re == "" {
				break // allocation regressions are deterministic: re-measuring cannot clear them
			}
			fmt.Printf("benchsnap: re-measuring %d regressed benchmark(s)\n", len(regressions))
			for _, pkg := range strings.Split(*pkgs, ",") {
				text, err := runBench(pkg, re, *benchtime, *count<<(retry+1))
				if err != nil {
					fatal(err)
				}
				lines = append(lines, strings.Split(text, "\n")...)
			}
			if snap, err = buildSnapshot(lines, *benchtime); err != nil {
				fatal(err)
			}
			regressions = compare(base, snap, *threshold, io.Discard)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchsnap:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("benchsnap: %d benchmarks within %.0f%% of %s\n",
			len(snap.Benchmarks), *threshold*100, *check)
	}
}

// retryRegexp builds the -bench regexp selecting the top-level
// benchmarks named in ns/op regressions ("" if none, e.g. only alloc
// regressions). Sub-benchmark paths and the -GOMAXPROCS suffix are
// stripped: go test selects by top-level function first.
func retryRegexp(regressions []string) string {
	seen := map[string]bool{}
	var names []string
	for _, r := range regressions {
		if !strings.Contains(r, "ns/op") {
			continue
		}
		name, _, _ := strings.Cut(r, ":")
		name, _, _ = strings.Cut(name, "/")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, regexp.QuoteMeta(name))
		}
	}
	if len(names) == 0 {
		return ""
	}
	return "^(" + strings.Join(names, "|") + ")$"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}

// runBench executes one package's benchmarks and returns the raw
// `go test` output. Benchmark-less packages yield no benchmark lines,
// which is fine; a failing build or test is not.
func runBench(pkg, benchRe, benchtime string, count int) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRe, "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench %s: %v\n%s", pkg, err, outBytes)
	}
	return string(outBytes), nil
}

// newSnapshot stamps the environment the numbers were measured in, so
// a later diff knows whether it is comparing like with like.
func newSnapshot(benchtime string) *Snapshot {
	return &Snapshot{
		Schema:    SchemaV1,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime,
	}
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: invalid snapshot JSON: %v", path, err)
	}
	if snap.Schema != SchemaV1 {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, snap.Schema, SchemaV1)
	}
	return &snap, nil
}
