// Command benchgen generates ConvMeter benchmark datasets (the paper's
// measurement campaigns) to CSV using the built-in simulators.
//
// Usage:
//
//	benchgen -scenario inference-gpu -out gpu.csv
//	benchgen -scenario inference-cpu -seed 7 -out cpu.csv
//	benchgen -scenario train-single  -out train1.csv
//	benchgen -scenario train-multi   -out trainN.csv
//	benchgen -scenario blocks        -out blocks.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"convmeter"
)

func main() {
	scenario := flag.String("scenario", "inference-gpu",
		"one of: inference-gpu, inference-cpu, train-single, train-multi, blocks")
	seed := flag.Int64("seed", 1, "simulator seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	flag.Parse()

	samples, err := convmeter.CollectNamed(*scenario, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := convmeter.WriteCSV(w, samples); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgen: wrote %d samples (%s)\n", len(samples), *scenario)
}
