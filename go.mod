module convmeter

go 1.22

// Pin the toolchain so `go vet`, convlint's type-checking and CI all
// agree on one compiler version (setup-go in ci.yml matches this).
toolchain go1.24.0
