module convmeter

go 1.22
