// Package convmeter is a Go implementation of ConvMeter — the analytical
// performance model for convolutional neural networks from "Dissecting
// Convolutional Neural Networks for Runtime and Scalability Prediction"
// (Beringer, Stock, Mazaheri, Wolf — ICPP '24).
//
// ConvMeter predicts ConvNet inference and training time from five
// metrics that can be computed statically from a network's computational
// graph — FLOPs, Inputs, Outputs, Weights and Layers — combined with a
// handful of platform-specific linear-regression coefficients fitted on
// benchmark measurements. It supports:
//
//   - inference (forward pass) prediction on CPUs and GPUs,
//   - per-block prediction for NAS-style architecture work,
//   - training-step prediction (forward, backward, gradient update),
//   - distributed data-parallel training and scalability analysis over
//     node counts and batch sizes, including batch sizes beyond device
//     memory.
//
// This package is the stable façade over the implementation packages. A
// typical session:
//
//	g, _ := convmeter.BuildModel("resnet50", 224)
//	met, _ := convmeter.MetricsOf(g)
//	samples, _ := convmeter.CollectInference(convmeter.DefaultInferenceScenario(convmeter.A100(), 1))
//	model, _ := convmeter.FitInference(samples)
//	fmt.Println(model.Predict(met, 64)) // seconds for batch 64
//
// Because no GPU cluster is attached to a Go test environment, benchmark
// "measurements" come from a calibrated roofline hardware simulator and a
// hierarchical all-reduce network simulator (see DESIGN.md for the
// substitution rationale); the modeling pipeline is unchanged — datasets
// collected on real hardware can be loaded with ReadCSV and fitted
// identically.
package convmeter

import (
	"io"

	"convmeter/internal/baselines"
	"convmeter/internal/bench"
	"convmeter/internal/core"
	"convmeter/internal/dagrun"
	"convmeter/internal/experiments"
	"convmeter/internal/graph"
	"convmeter/internal/hwreal"
	"convmeter/internal/hwsim"
	"convmeter/internal/metrics"
	"convmeter/internal/models"
	"convmeter/internal/netsim"
	"convmeter/internal/pipesim"
	"convmeter/internal/trainsim"
)

// Core modelling types.
type (
	// Graph is a ConvNet computational graph (JSON-serialisable).
	Graph = graph.Graph
	// Shape is a per-image CHW tensor shape.
	Shape = graph.Shape
	// Builder constructs graphs programmatically.
	Builder = graph.Builder
	// Metrics holds the five ConvMeter metrics at batch size 1.
	Metrics = metrics.Metrics
	// Sample is one benchmark measurement used for fitting.
	Sample = core.Sample
	// InferenceModel is a fitted forward-pass predictor (Eq. 2/3).
	InferenceModel = core.InferenceModel
	// TrainingModel is a fitted training-step predictor (Eq. 1).
	TrainingModel = core.TrainingModel
	// Phases is a predicted training-step decomposition.
	Phases = core.Phases
	// Evaluation is a leave-one-model-out accuracy report.
	Evaluation = core.Evaluation
	// TrainEvaluation adds per-phase reports to Evaluation.
	TrainEvaluation = core.TrainEvaluation
	// Device is a simulated processor profile.
	Device = hwsim.Device
	// Fabric is a simulated cluster interconnect.
	Fabric = netsim.Fabric
	// BlockInfo describes a named ConvNet block (Table 2).
	BlockInfo = models.BlockInfo
)

// Benchmark scenario types.
type (
	// InferenceScenario configures an inference benchmark sweep.
	InferenceScenario = bench.InferenceScenario
	// TrainingScenario configures a training benchmark sweep.
	TrainingScenario = bench.TrainingScenario
	// BlockScenario configures a block-wise benchmark sweep.
	BlockScenario = bench.BlockScenario
)

// NewGraph starts building a graph with the given name and input shape.
func NewGraph(name string, input Shape) (*Builder, graph.Ref) {
	return graph.NewBuilder(name, input)
}

// ModelNames lists the ConvNet zoo (AlexNet … DenseNet).
func ModelNames() []string { return models.Names() }

// BuildModel constructs a zoo model for a square img×img RGB input.
func BuildModel(name string, img int) (*Graph, error) { return models.Build(name, img) }

// BlockNames lists the named constituent blocks of Table 2.
func BlockNames() []string { return models.BlockNames() }

// Block returns metadata for a named block.
func Block(name string) (BlockInfo, error) { return models.Block(name) }

// BuildBlock constructs a named block with an hw×hw spatial input.
func BuildBlock(name string, hw int) (*Graph, error) { return models.BuildBlock(name, hw) }

// MetricsOf extracts the five ConvMeter metrics from a graph.
func MetricsOf(g *Graph) (Metrics, error) { return metrics.FromGraph(g) }

// MetricsOfRange extracts the metrics of the node range [from, to) — a
// block or pipeline stage of a larger network.
func MetricsOfRange(g *Graph, from, to int) (Metrics, error) {
	return metrics.FromGraphRange(g, from, to)
}

// A100 returns the NVIDIA A100-80GB-like simulated device profile.
func A100() Device { return hwsim.A100() }

// XeonCore returns the single-Xeon-core-like simulated device profile.
func XeonCore() Device { return hwsim.XeonCore() }

// JetsonLike returns an embedded-GPU (Jetson-class) edge device profile.
func JetsonLike() Device { return hwsim.JetsonLike() }

// PiLike returns a small-ARM-core (Raspberry-Pi-class) edge device
// profile.
func PiLike() Device { return hwsim.PiLike() }

// Cluster returns the 4×A100-per-node NVLink + InfiniBand fabric profile.
func Cluster() Fabric { return netsim.Cluster() }

// DefaultInferenceScenario is the paper's inference benchmark campaign.
func DefaultInferenceScenario(dev Device, seed int64) InferenceScenario {
	return bench.DefaultInferenceScenario(dev, seed)
}

// DefaultSingleGPUScenario is the paper's single-A100 training campaign.
func DefaultSingleGPUScenario(seed int64) TrainingScenario {
	return bench.DefaultSingleGPUScenario(seed)
}

// DefaultDistributedScenario is the paper's multi-node training campaign.
func DefaultDistributedScenario(seed int64) TrainingScenario {
	return bench.DefaultDistributedScenario(seed)
}

// DefaultBlockScenario is the paper's block-wise benchmark campaign.
func DefaultBlockScenario(seed int64) BlockScenario {
	return bench.DefaultBlockScenario(seed)
}

// CollectInference runs an inference benchmark sweep on the simulator.
func CollectInference(sc InferenceScenario) ([]Sample, error) {
	return bench.CollectInference(sc)
}

// CollectTraining runs a training benchmark sweep on the simulator.
func CollectTraining(sc TrainingScenario) ([]Sample, error) {
	return bench.CollectTraining(sc)
}

// CollectBlocks runs a block-wise benchmark sweep on the simulator.
func CollectBlocks(sc BlockScenario) ([]Sample, error) {
	return bench.CollectBlocks(sc)
}

// CollectNamed runs one of the named default campaigns: inference-gpu,
// inference-cpu, train-single, train-multi, blocks.
func CollectNamed(scenario string, seed int64) ([]Sample, error) {
	return bench.CollectNamed(scenario, seed)
}

// Subsample draws n samples deterministically, stratified by model, so a
// reduced dataset still spans the zoo.
func Subsample(samples []Sample, n int, seed int64) []Sample {
	return bench.Subsample(samples, n, seed)
}

// WriteCSV stores a benchmark dataset.
func WriteCSV(w io.Writer, samples []Sample) error { return bench.WriteCSV(w, samples) }

// ReadCSV loads a benchmark dataset (simulated or real).
func ReadCSV(r io.Reader) ([]Sample, error) { return bench.ReadCSV(r) }

// FitInference fits the four-coefficient forward-pass model.
func FitInference(samples []Sample) (*InferenceModel, error) {
	return core.FitInference(samples)
}

// FitTraining fits the training-step model (forward, backward, gradient
// and the combined overlapped form).
func FitTraining(samples []Sample) (*TrainingModel, error) {
	return core.FitTraining(samples)
}

// EvaluateInferenceLOMO runs the paper's leave-one-model-out protocol on
// inference samples.
func EvaluateInferenceLOMO(samples []Sample) (*Evaluation, error) {
	return core.EvaluateInferenceLOMO(samples)
}

// EvaluateTrainingLOMO runs the leave-one-model-out protocol on training
// samples.
func EvaluateTrainingLOMO(samples []Sample) (*TrainEvaluation, error) {
	return core.EvaluateTrainingLOMO(samples)
}

// ExperimentConfig controls a paper-experiment run.
type ExperimentConfig = experiments.Config

// ExperimentResult is the outcome of one paper experiment.
type ExperimentResult = experiments.Result

// RunExperiment reproduces one of the paper's tables/figures by id
// (fig2, table1, table2, table3single, fig6, table3multi, fig8, fig9,
// ablation).
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.Run(id, cfg)
}

// RunAllExperiments reproduces every table and figure in order.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentResult, error) {
	return experiments.All(cfg)
}

// ExperimentIDs lists every experiment id in the paper's order.
func ExperimentIDs() []string {
	return experiments.IDs()
}

// ExperimentsDagConfig parameterises a durable (crash-resumable,
// manifest-backed) experiment run.
type ExperimentsDagConfig = experiments.DagConfig

// DagRunner is the dependency-aware executor behind durable experiment
// runs; its live audit trail serves the ops server's /dag endpoint.
type DagRunner = dagrun.Runner

// DagReport is the executor's audit trail: per-node state, manifest
// hash, attempt count and blame.
type DagReport = dagrun.Report

// ErrDagCrashed marks a run killed by an injected process crash; resume
// by re-running over the same manifest directory.
var ErrDagCrashed = dagrun.ErrCrashed

// NewExperimentsDAG builds the fit→LOMO→figures/report executor for the
// given experiment ids (Execute it to run; register it on the ops
// server first for a live /dag).
func NewExperimentsDAG(ids []string, cfg ExperimentConfig, dcfg ExperimentsDagConfig) (*DagRunner, error) {
	return experiments.NewDAGRunner(ids, cfg, dcfg)
}

// CollectExperimentsDAG decodes the ordered experiment results from a
// completed DAG run.
func CollectExperimentsDAG(r *DagRunner) ([]*ExperimentResult, error) {
	return experiments.CollectDAGResults(r)
}

// MetricMask selects metric subsets for the Figure 2 ablation baselines.
type MetricMask = baselines.MetricMask

// FitAblation fits a restricted (e.g. FLOPs-only) inference model.
func FitAblation(samples []Sample, mask MetricMask) (*baselines.AblationModel, error) {
	return baselines.FitAblation(samples, mask)
}

// Pipeline model parallelism (extension; see internal/pipesim).
type (
	// PipelineStage is one contiguous stage of a pipeline partition.
	PipelineStage = pipesim.Stage
	// PipelinePredictor composes the block-wise model into pipeline
	// throughput predictions.
	PipelinePredictor = pipesim.Predictor
	// PipelineLink is the inter-stage transport profile.
	PipelineLink = pipesim.Link
)

// PartitionPipeline splits a graph into k FLOPs-balanced contiguous
// stages for pipeline model parallelism.
func PartitionPipeline(g *Graph, k int) ([]PipelineStage, error) {
	return pipesim.Partition(g, k)
}

// NVLinkStageLink returns the default NVLink-like inter-stage link.
func NVLinkStageLink() PipelineLink { return pipesim.NVLink() }

// StrongScalingPoint is one entry of a strong-scaling (fixed global
// batch) prediction curve — see TrainingModel.PredictStrongScaling.
type StrongScalingPoint = core.StrongScalingPoint

// MeasureReal times an actual forward-pass execution of the graph on the
// host CPU using the built-in Go execution engine — a genuine wall-clock
// measurement (warmup untimed runs, then the fastest of reps timed runs).
func MeasureReal(g *Graph, batch, warmup, reps int, seed int64) (float64, error) {
	return hwreal.Measure(g, batch, warmup, reps, seed)
}

// RealScenario configures a real-hardware measurement campaign on the
// host CPU.
type RealScenario = hwreal.Scenario

// DefaultRealScenario is a small host-CPU campaign (seconds of wall
// clock).
func DefaultRealScenario(seed int64) RealScenario { return hwreal.DefaultScenario(seed) }

// CollectReal runs a real-hardware campaign and returns fitted-ready
// samples.
func CollectReal(sc RealScenario) ([]Sample, error) { return hwreal.Collect(sc) }

// TrainStepSimulator exposes the training simulator for users who want
// raw simulated measurements rather than fitted predictions.
type TrainStepSimulator = trainsim.Simulator

// NewTrainSimulator builds a training simulator on the given device and
// fabric with the given measurement-noise levels.
func NewTrainSimulator(dev Device, fab Fabric, noise, commNoise float64, seed int64) (*TrainStepSimulator, error) {
	return trainsim.New(trainsim.Config{
		Device: dev, Fabric: fab,
		NoiseSigma: noise, CommNoiseSigma: commNoise, Seed: seed,
	})
}
